package chaos_test

// Opt-in soak: the full pipeline — ingress stamping, eddy routing with
// SteM joins, windowed sequence-of-sets evaluation, pull egress — driven
// by a seeded chaos-perturbed arrival order, 10k tuples. The golden
// filter/join answers are computed by reference implementations over the
// recorded arrival order; the windowed query is checked by running two
// independent engines over the same arrival order and demanding identical
// output (watermark firing is data-driven, so any nondeterminism in the
// engine shows up as a diff). Skipped under -short.

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/core"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

const (
	soakDays    = 5000 // 2 rows/day => 10k tuples
	soakCutoff  = 4800.0
	soakWinFrom = 100
	soakWinTo   = 400
	soakWinLen  = 50
)

// soakArrival builds the deterministic chaos-perturbed arrival order:
// MSFT (price=day) and IBM (price=day+100) rows pushed through a seeded
// reorder/delay site. Content-preserving faults only, so the tuple
// multiset is exact and only the order is perturbed.
func soakArrival(t *testing.T, seed int64) []*tuple.Tuple {
	t.Helper()
	inj := chaos.New(chaos.Config{
		Seed: seed, Delay: 0.01, Reorder: 0.25,
		MaxDelay: time.Microsecond,
	}, nil)
	site := inj.Site("soak/ingress")
	var arrival []*tuple.Tuple
	record := func(tp *tuple.Tuple) bool {
		arrival = append(arrival, tp)
		return true
	}
	for d := int64(1); d <= soakDays; d++ {
		site.PerturbSend(tuple.New(
			tuple.Time(d), tuple.String_("MSFT"), tuple.Float(float64(d))), record)
		site.PerturbSend(tuple.New(
			tuple.Time(d), tuple.String_("IBM"), tuple.Float(float64(d+100))), record)
	}
	site.Flush(record)
	if len(arrival) != 2*soakDays {
		t.Fatalf("perturbed arrival = %d tuples, want %d (reorder/delay must preserve content)",
			len(arrival), 2*soakDays)
	}
	reordered := false
	for i, tp := range arrival {
		if tp.Vals[0].AsInt() != int64(i/2)+1 {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Fatal("chaos site produced the unperturbed order; soak is not exercising reorder")
	}
	return arrival
}

// soakRun feeds the arrival order into a fresh engine running the three
// query shapes and returns each query's results rendered as sorted lines.
func soakRun(t *testing.T, arrival []*tuple.Tuple) (filter, join, windowed []string) {
	t.Helper()
	e := core.NewEngine(core.Options{EOs: 2})
	defer e.Stop()
	if err := e.CreateStream("ClosingStockPrices", workload.StockSchema(), 0); err != nil {
		t.Fatal(err)
	}
	watchSchema := tuple.NewSchema("Watch",
		tuple.Column{Name: "ts", Kind: tuple.KindTime},
		tuple.Column{Name: "sym", Kind: tuple.KindString},
		tuple.Column{Name: "note", Kind: tuple.KindString})
	if err := e.CreateStream("Watch", watchSchema, 0); err != nil {
		t.Fatal(err)
	}

	qFilter, err := e.Register(fmt.Sprintf(
		`SELECT timestamp, closingPrice FROM ClosingStockPrices
		 WHERE stockSymbol = 'MSFT' AND closingPrice > %f`, soakCutoff))
	if err != nil {
		t.Fatal(err)
	}
	qJoin, err := e.Register(
		`SELECT ClosingStockPrices.timestamp, Watch.note
		 FROM ClosingStockPrices, Watch
		 WHERE ClosingStockPrices.stockSymbol = Watch.sym
		 AND ClosingStockPrices.closingPrice > 4900`)
	if err != nil {
		t.Fatal(err)
	}
	qWin, err := e.Register(fmt.Sprintf(
		`SELECT AVG(closingPrice) FROM ClosingStockPrices
		 WHERE stockSymbol = 'IBM'
		 for (t = %d; t <= %d; t++) { WindowIs(ClosingStockPrices, t - %d, t); }`,
		soakWinFrom, soakWinTo, soakWinLen-1))
	if err != nil {
		t.Fatal(err)
	}

	if err := e.Feed("Watch", tuple.New(
		tuple.Time(0), tuple.String_("IBM"), tuple.String_("blue"))); err != nil {
		t.Fatal(err)
	}
	for _, tp := range arrival {
		if err := e.Feed("ClosingStockPrices", tuple.New(tp.Vals...)); err != nil {
			t.Fatal(err)
		}
	}

	qWin.Wait()
	// The unwindowed queries have no completion signal; poll their result
	// counters to the known reference totals on the real clock.
	wantFilter := soakDays - int(soakCutoff) // MSFT days cutoff+1..soakDays
	wantJoin := soakDays - 4800              // IBM days with price day+100 > 4900
	if !chaos.Poll(nil, 30*time.Second, time.Millisecond, func() bool {
		return qFilter.Results() >= int64(wantFilter) && qJoin.Results() >= int64(wantJoin)
	}) {
		t.Fatalf("soak queries did not converge: filter=%d/%d join=%d/%d",
			qFilter.Results(), wantFilter, qJoin.Results(), wantJoin)
	}

	fetch := func(q *core.RunningQuery) []string {
		res, err := q.Fetch(q.Cursor())
		if err != nil {
			t.Fatal(err)
		}
		lines := make([]string, 0, len(res))
		for _, r := range res {
			lines = append(lines, fmt.Sprintf("%v", r.Vals))
		}
		sort.Strings(lines)
		return lines
	}
	return fetch(qFilter), fetch(qJoin), fetch(qWin)
}

func TestChaosSoakFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped with -short")
	}
	seed := campaignSeed(t, 9001)
	arrival := soakArrival(t, seed)

	filter, join, windowed := soakRun(t, arrival)

	// Golden reference for the eddy queries, computed from the recorded
	// arrival order (content-based, order-independent result sets).
	var wantFilter, wantJoin []string
	for _, tp := range arrival {
		sym := tp.Vals[1].AsString()
		price := tp.Vals[2].AsFloat()
		if sym == "MSFT" && price > soakCutoff {
			wantFilter = append(wantFilter,
				fmt.Sprintf("%v", []tuple.Value{tp.Vals[0], tp.Vals[2]}))
		}
		if sym == "IBM" && price > 4900 {
			wantJoin = append(wantJoin,
				fmt.Sprintf("%v", []tuple.Value{tp.Vals[0], tuple.String_("blue")}))
		}
	}
	sort.Strings(wantFilter)
	sort.Strings(wantJoin)
	diffLines(t, "filter", filter, wantFilter)
	diffLines(t, "join", join, wantJoin)
	if want := soakWinTo - soakWinFrom + 1; len(windowed) != want {
		t.Errorf("windowed instances = %d, want %d", len(windowed), want)
	}

	// Determinism golden: a second engine over the same arrival order must
	// produce byte-identical results for all three query shapes, including
	// the watermark-fired windowed sets.
	filter2, join2, windowed2 := soakRun(t, arrival)
	diffLines(t, "filter determinism", filter2, filter)
	diffLines(t, "join determinism", join2, join)
	diffLines(t, "windowed determinism", windowed2, windowed)
}

func diffLines(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d rows, want %d", what, len(got), len(want))
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: row %d = %q, want %q", what, i, got[i], want[i])
			return
		}
	}
}
