// Package chaos provides the deterministic fault-injection substrate the
// engine's "uncertain world" machinery is tested with: an injectable Clock
// (real and virtual implementations) and a seeded Injector that perturbs
// hot paths — tuple drop/delay/duplicate/reorder at Fjord queue
// boundaries, node crashes and slow-consumer stalls in Flux, queue-full
// bursts in ingress, and connection resets in the server proxy. Every
// decision an Injector makes is drawn from a per-site RNG stream derived
// from one seed, so a whole chaos run is reproducible: a failing trial
// prints its seed and rerunning with that seed replays the identical
// event trace.
package chaos

import (
	"sync"
	"time"
)

// Clock abstracts the time operations the engine's hot paths need, so
// tests can substitute a virtual clock and make timing deterministic.
// Production code in internal/flux, internal/fjord and internal/ingress
// must reach time only through a Clock (the grep-clean invariant checked
// by TestNoDirectTimeInProductionCode).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// Sleep pauses the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc runs f in its own goroutine once d has elapsed.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is the stoppable handle returned by AfterFunc.
type Timer interface {
	// Stop prevents the timer from firing, reporting whether it did.
	Stop() bool
}

// realClock implements Clock with the time package. This is the one place
// in the repo allowed to call time.Now/time.Sleep/time.After on behalf of
// flux, fjord and ingress production code.
type realClock struct{}

// Real returns the wall-clock implementation of Clock.
func Real() Clock { return realClock{} }

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// VirtualClock is a deterministic simulated clock: time advances only via
// Advance (or, in auto-advance mode, when a goroutine sleeps). Timers fire
// in deadline order as the clock passes them, so a run's timing behaviour
// is a pure function of the sequence of Advance calls — no wall-clock
// dependence and no timing flakiness.
type VirtualClock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	now    time.Time
	timers []*vtimer
	auto   bool
	seq    uint64 // tie-break so equal deadlines fire in creation order
}

type vtimer struct {
	deadline time.Time
	seq      uint64
	ch       chan time.Time // nil for func timers
	fn       func()
	stopped  bool
}

// NewVirtual returns a virtual clock starting at start. The zero time is a
// fine start for tests that only care about durations.
func NewVirtual(start time.Time) *VirtualClock {
	v := &VirtualClock{now: start}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// SetAutoAdvance controls auto-advance mode: when on, a goroutine calling
// Sleep advances the clock to its own deadline instead of blocking until
// an external Advance. Polling loops (WaitIdle-style) then terminate
// promptly and deterministically without any goroutine driving the clock.
func (v *VirtualClock) SetAutoAdvance(on bool) {
	v.mu.Lock()
	v.auto = on
	v.mu.Unlock()
}

// Now implements Clock.
func (v *VirtualClock) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *VirtualClock) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Advance moves the clock forward by d, firing every timer whose deadline
// is passed, in deadline order.
func (v *VirtualClock) Advance(d time.Duration) {
	v.mu.Lock()
	v.advanceToLocked(v.now.Add(d))
	v.mu.Unlock()
}

// advanceToLocked moves time to target, firing due timers in (deadline,
// creation) order. Fired func timers run without the lock held.
func (v *VirtualClock) advanceToLocked(target time.Time) {
	if target.Before(v.now) {
		return
	}
	for {
		var next *vtimer
		idx := -1
		for i, t := range v.timers {
			if t.stopped || t.deadline.After(target) {
				continue
			}
			if next == nil || t.deadline.Before(next.deadline) ||
				(t.deadline.Equal(next.deadline) && t.seq < next.seq) {
				next, idx = t, i
			}
		}
		if next == nil {
			break
		}
		v.timers = append(v.timers[:idx], v.timers[idx+1:]...)
		if v.now.Before(next.deadline) {
			v.now = next.deadline
		}
		if next.ch != nil {
			next.ch <- v.now
		}
		if next.fn != nil {
			fn := next.fn
			v.mu.Unlock()
			fn()
			v.mu.Lock()
		}
	}
	v.now = target
	v.cond.Broadcast()
}

// Sleep implements Clock. In auto-advance mode the sleeper drives the
// clock to its own deadline; otherwise it blocks until Advance passes it.
func (v *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	deadline := v.now.Add(d)
	if v.auto {
		v.advanceToLocked(deadline)
		v.mu.Unlock()
		return
	}
	for v.now.Before(deadline) {
		v.cond.Wait()
	}
	v.mu.Unlock()
}

// After implements Clock. The channel fires when Advance passes the
// deadline (buffered so the advancer never blocks).
func (v *VirtualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	v.seq++
	v.timers = append(v.timers, &vtimer{deadline: v.now.Add(d), seq: v.seq, ch: ch})
	v.mu.Unlock()
	return ch
}

// AfterFunc implements Clock.
func (v *VirtualClock) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	v.seq++
	t := &vtimer{deadline: v.now.Add(d), seq: v.seq, fn: f}
	v.timers = append(v.timers, t)
	v.mu.Unlock()
	return &virtualTimer{clk: v, t: t}
}

type virtualTimer struct {
	clk *VirtualClock
	t   *vtimer
}

// Stop implements Timer.
func (vt *virtualTimer) Stop() bool {
	vt.clk.mu.Lock()
	defer vt.clk.mu.Unlock()
	if vt.t.stopped {
		return false
	}
	vt.t.stopped = true
	for i, t := range vt.clk.timers {
		if t == vt.t {
			vt.clk.timers = append(vt.clk.timers[:i], vt.clk.timers[i+1:]...)
			return true
		}
	}
	return false
}

// Poll re-evaluates cond every interval until it returns true or timeout
// elapses, reporting whether the condition held. It is the repo's
// replacement for ad-hoc sleep-based test waits: the wait is bounded,
// condition-driven, and clock-injectable.
func Poll(clk Clock, timeout, interval time.Duration, cond func() bool) bool {
	if clk == nil {
		clk = Real()
	}
	deadline := clk.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if !clk.Now().Before(deadline) {
			return false
		}
		clk.Sleep(interval)
	}
}
