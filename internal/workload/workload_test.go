package workload

import (
	"testing"

	"telegraphcq/internal/tuple"
)

func TestStockGeneratorDeterministic(t *testing.T) {
	a := NewStockGenerator(1, nil).Take(100)
	b := NewStockGenerator(1, nil).Take(100)
	for i := range a {
		for j := range a[i].Vals {
			if !tuple.Equal(a[i].Vals[j], b[i].Vals[j]) {
				t.Fatalf("tuple %d differs", i)
			}
		}
	}
}

func TestStockGeneratorShape(t *testing.T) {
	g := NewStockGenerator(1, []string{"A", "B"})
	ts := g.Take(6)
	// Two symbols: days advance every 2 tuples, seq every tuple.
	if ts[0].TS != 1 || ts[1].TS != 1 || ts[2].TS != 2 {
		t.Errorf("days = %d %d %d", ts[0].TS, ts[1].TS, ts[2].TS)
	}
	for i, tp := range ts {
		if tp.Seq != int64(i+1) {
			t.Errorf("seq[%d] = %d", i, tp.Seq)
		}
		if tp.Vals[2].AsFloat() < 1 {
			t.Errorf("price floor violated: %v", tp.Vals[2])
		}
	}
	if ts[0].Vals[1].AsString() != "A" || ts[1].Vals[1].AsString() != "B" {
		t.Errorf("symbols = %v %v", ts[0].Vals[1], ts[1].Vals[1])
	}
}

func TestPacketGeneratorSkew(t *testing.T) {
	uniform := NewPacketGenerator(1, 100, 0)
	skewed := NewPacketGenerator(1, 100, 1.0)
	count := func(g *PacketGenerator) map[int64]int {
		m := map[int64]int{}
		for i := 0; i < 5000; i++ {
			m[g.Next().Vals[1].AsInt()]++
		}
		return m
	}
	u, s := count(uniform), count(skewed)
	maxOf := func(m map[int64]int) int {
		mx := 0
		for _, v := range m {
			if v > mx {
				mx = v
			}
		}
		return mx
	}
	if maxOf(s) <= 2*maxOf(u) {
		t.Errorf("zipf skew not visible: uniform max %d, skewed max %d", maxOf(u), maxOf(s))
	}
}

func TestPacketGeneratorFields(t *testing.T) {
	g := NewPacketGenerator(1, 10, 0)
	p := g.Next()
	if len(p.Vals) != 5 || p.TS != 1 || p.Seq != 1 {
		t.Errorf("packet = %+v", p)
	}
	if b := p.Vals[4].AsInt(); b < 64 || b > 1500 {
		t.Errorf("bytes = %d", b)
	}
}

func TestSensorGeneratorRateChange(t *testing.T) {
	g := NewSensorGenerator(1, 3, 2)
	if got := len(g.Tick()); got != 6 {
		t.Errorf("tick produced %d, want 6", got)
	}
	g.SampleRate = 5
	if got := len(g.Tick()); got != 15 {
		t.Errorf("tick produced %d, want 15", got)
	}
}

func TestDriftGeneratorPhases(t *testing.T) {
	g := NewDriftGenerator(1, 100)
	// Phase 0: x in [0,100), y in [0,10).
	for i := 0; i < 100; i++ {
		tp := g.Next()
		if y := tp.Vals[1].AsInt(); y >= 10 {
			t.Fatalf("phase 0 y = %d", y)
		}
	}
	// Phase 1: x in [0,10).
	for i := 0; i < 100; i++ {
		tp := g.Next()
		if x := tp.Vals[0].AsInt(); x >= 10 {
			t.Fatalf("phase 1 x = %d", x)
		}
	}
}

func TestArrivalProcesses(t *testing.T) {
	if Steady(5).N(99) != 5 {
		t.Error("steady")
	}
	b := Bursty{Base: 2, Factor: 10, Period: 3}
	if b.N(0) != 2 || b.N(3) != 20 || b.N(6) != 2 {
		t.Errorf("bursty = %d %d %d", b.N(0), b.N(3), b.N(6))
	}
}

func TestSchemas(t *testing.T) {
	if StockSchema().Arity() != 3 || PacketSchema().Arity() != 5 ||
		SensorSchema().Arity() != 4 || DriftSchema().Arity() != 2 {
		t.Error("schema arity mismatch")
	}
	if Describe(StockSchema()) == "" {
		t.Error("empty describe")
	}
}
