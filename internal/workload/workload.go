// Package workload generates the synthetic streams driving the examples
// and experiments: the paper's ClosingStockPrices schema (§4.1), network
// packet traces for the monitoring scenario the introduction motivates,
// sensor readings, and adversarial drift/burst streams that exercise the
// adaptive machinery. All generators are deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"

	"telegraphcq/internal/tuple"
)

// Symbols is the default stock universe.
var Symbols = []string{"MSFT", "IBM", "ORCL", "SUNW", "INTC", "CSCO", "AAPL", "DELL"}

// StockSchema is ClosingStockPrices(timestamp, stockSymbol, closingPrice),
// the schema of every §4.1 example query.
func StockSchema() *tuple.Schema {
	return tuple.NewSchema("ClosingStockPrices",
		tuple.Column{Name: "timestamp", Kind: tuple.KindTime},
		tuple.Column{Name: "stockSymbol", Kind: tuple.KindString},
		tuple.Column{Name: "closingPrice", Kind: tuple.KindFloat},
	)
}

// StockGenerator produces one tuple per (trading day, symbol), prices
// following independent random walks. The stream starts at logical
// timestamp 1 like the paper's examples.
type StockGenerator struct {
	rng     *rand.Rand
	symbols []string
	prices  []float64
	day     int64
	idx     int
	seq     int64
}

// NewStockGenerator creates a generator over the given symbols (nil means
// the default universe), seeded deterministically.
func NewStockGenerator(seed int64, symbols []string) *StockGenerator {
	if symbols == nil {
		symbols = Symbols
	}
	g := &StockGenerator{
		rng:     rand.New(rand.NewSource(seed)),
		symbols: symbols,
		prices:  make([]float64, len(symbols)),
		day:     1,
	}
	for i := range g.prices {
		g.prices[i] = 20 + g.rng.Float64()*80
	}
	return g
}

// Next returns the next tuple: days advance after all symbols emit.
func (g *StockGenerator) Next() *tuple.Tuple {
	i := g.idx
	g.prices[i] += g.rng.NormFloat64() * 1.5
	if g.prices[i] < 1 {
		g.prices[i] = 1
	}
	t := tuple.New(
		tuple.Time(g.day),
		tuple.String_(g.symbols[i]),
		tuple.Float(g.prices[i]),
	)
	t.TS = g.day
	g.seq++
	t.Seq = g.seq
	g.idx++
	if g.idx == len(g.symbols) {
		g.idx = 0
		g.day++
	}
	return t
}

// Take returns the next n tuples.
func (g *StockGenerator) Take(n int) []*tuple.Tuple {
	out := make([]*tuple.Tuple, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// PacketSchema is packets(ts, src, dst, port, bytes) for the network
// monitoring scenario.
func PacketSchema() *tuple.Schema {
	return tuple.NewSchema("packets",
		tuple.Column{Name: "ts", Kind: tuple.KindTime},
		tuple.Column{Name: "src", Kind: tuple.KindInt},
		tuple.Column{Name: "dst", Kind: tuple.KindInt},
		tuple.Column{Name: "port", Kind: tuple.KindInt},
		tuple.Column{Name: "bytes", Kind: tuple.KindInt},
	)
}

// PacketGenerator produces packet tuples with Zipf-skewed hosts, the skew
// that drives Flux's load-balancing experiment (E6).
type PacketGenerator struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	hosts int64
	ts    int64
	seq   int64
}

// NewPacketGenerator creates a generator over hosts hosts with Zipf
// parameter theta (theta 0 requests uniform traffic).
func NewPacketGenerator(seed int64, hosts int, theta float64) *PacketGenerator {
	rng := rand.New(rand.NewSource(seed))
	g := &PacketGenerator{rng: rng, hosts: int64(hosts)}
	if theta > 0 {
		// rand.Zipf requires s > 1; map theta in (0,1] onto (1, 2].
		g.zipf = rand.NewZipf(rng, 1+theta, 1, uint64(hosts-1))
	}
	return g
}

func (g *PacketGenerator) host() int64 {
	if g.zipf != nil {
		return int64(g.zipf.Uint64())
	}
	return g.rng.Int63n(g.hosts)
}

// Next returns the next packet tuple.
func (g *PacketGenerator) Next() *tuple.Tuple {
	g.ts++
	g.seq++
	t := tuple.New(
		tuple.Time(g.ts),
		tuple.Int(g.host()),
		tuple.Int(g.host()),
		tuple.Int(int64(g.rng.Intn(1024))),
		tuple.Int(int64(64+g.rng.Intn(1436))),
	)
	t.TS = g.ts
	t.Seq = g.seq
	return t
}

// Take returns the next n tuples.
func (g *PacketGenerator) Take(n int) []*tuple.Tuple {
	out := make([]*tuple.Tuple, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// SensorSchema is readings(ts, sensor, temp, volt).
func SensorSchema() *tuple.Schema {
	return tuple.NewSchema("readings",
		tuple.Column{Name: "ts", Kind: tuple.KindTime},
		tuple.Column{Name: "sensor", Kind: tuple.KindInt},
		tuple.Column{Name: "temp", Kind: tuple.KindFloat},
		tuple.Column{Name: "volt", Kind: tuple.KindFloat},
	)
}

// SensorGenerator produces periodic sensor readings whose SampleRate can be
// adjusted mid-stream — the control loop a sensor proxy exercises when
// queries change ([MF02], §2.1).
type SensorGenerator struct {
	rng *rand.Rand
	// SampleRate is readings per time unit per sensor (adjustable).
	SampleRate int
	sensors    int
	ts         int64
	seq        int64
	temps      []float64
}

// NewSensorGenerator creates a generator for the given sensor count.
func NewSensorGenerator(seed int64, sensors, sampleRate int) *SensorGenerator {
	g := &SensorGenerator{
		rng:        rand.New(rand.NewSource(seed)),
		SampleRate: sampleRate,
		sensors:    sensors,
		temps:      make([]float64, sensors),
	}
	for i := range g.temps {
		g.temps[i] = 15 + g.rng.Float64()*15
	}
	return g
}

// Tick advances one time unit and returns the readings it produced
// (sensors × SampleRate tuples).
func (g *SensorGenerator) Tick() []*tuple.Tuple {
	g.ts++
	var out []*tuple.Tuple
	for s := 0; s < g.sensors; s++ {
		g.temps[s] += g.rng.NormFloat64() * 0.2
		for r := 0; r < g.SampleRate; r++ {
			g.seq++
			t := tuple.New(
				tuple.Time(g.ts),
				tuple.Int(int64(s)),
				tuple.Float(g.temps[s]),
				tuple.Float(2.5+g.rng.Float64()),
			)
			t.TS = g.ts
			t.Seq = g.seq
			out = append(out, t)
		}
	}
	return out
}

// DriftSchema is drift(x, y): two integer attributes whose selectivities
// against fixed predicates trade places every Period tuples, the adversary
// for which eddies exist (E2).
func DriftSchema() *tuple.Schema {
	return tuple.NewSchema("drift",
		tuple.Column{Name: "x", Kind: tuple.KindInt},
		tuple.Column{Name: "y", Kind: tuple.KindInt},
	)
}

// DriftGenerator emits tuples where, in even phases, x is uniform in
// [0,100) and y in [0,10); phases flip every Period tuples. A predicate
// "col < 10" is therefore 10% selective on one attribute and 100% on the
// other, alternating.
type DriftGenerator struct {
	Period int64
	n      int64
	rng    *rand.Rand
}

// NewDriftGenerator creates a drift generator with the given phase length.
func NewDriftGenerator(seed, period int64) *DriftGenerator {
	return &DriftGenerator{Period: period, rng: rand.New(rand.NewSource(seed))}
}

// Next emits the next tuple.
func (g *DriftGenerator) Next() *tuple.Tuple {
	phase := (g.n / g.Period) % 2
	var x, y int64
	if phase == 0 {
		x, y = g.rng.Int63n(100), g.rng.Int63n(10)
	} else {
		x, y = g.rng.Int63n(10), g.rng.Int63n(100)
	}
	t := tuple.New(tuple.Int(x), tuple.Int(y))
	t.TS = g.n
	t.Seq = g.n
	g.n++
	return t
}

// Arrival models an arrival process: for each tick it returns how many
// tuples arrive. Bursty arrivals are the storage/QoS stressor (§4.3).
type Arrival interface {
	// N returns the number of arrivals at tick i.
	N(i int64) int
}

// Steady is a constant-rate arrival process.
type Steady int

// N implements Arrival.
func (s Steady) N(int64) int { return int(s) }

// Bursty alternates Base arrivals with Base*Factor arrivals every Period
// ticks.
type Bursty struct {
	Base   int
	Factor int
	Period int64
}

// N implements Arrival.
func (b Bursty) N(i int64) int {
	if b.Period > 0 && (i/b.Period)%2 == 1 {
		return b.Base * b.Factor
	}
	return b.Base
}

// Describe renders a one-line summary of a schema for harness output.
func Describe(s *tuple.Schema) string { return fmt.Sprint(s) }
