package ingress

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"telegraphcq/internal/tuple"
)

// PushServer is a push-server source (§4.2.3): external producers connect
// to a well-known port served by the Wrapper process and write CSV lines;
// the wrapper's goroutines perform the network I/O so the executor never
// blocks on the network.
type PushServer struct {
	schema *tuple.Schema
	ln     net.Listener
	out    chan *tuple.Tuple
	quit   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	conns  atomic.Int64
}

// NewPushServer listens on addr (e.g. "127.0.0.1:0") for CSV producers.
func NewPushServer(schema *tuple.Schema, addr string, buffer int) (*PushServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ingress: push server: %w", err)
	}
	if buffer < 1 {
		buffer = 1024
	}
	ps := &PushServer{
		schema: schema,
		ln:     ln,
		out:    make(chan *tuple.Tuple, buffer),
		quit:   make(chan struct{}),
	}
	ps.wg.Add(1)
	go ps.accept()
	return ps, nil
}

// Addr returns the bound listen address.
func (ps *PushServer) Addr() string { return ps.ln.Addr().String() }

func (ps *PushServer) accept() {
	defer ps.wg.Done()
	for {
		conn, err := ps.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ps.conns.Add(1)
		ps.wg.Add(1)
		go ps.serve(conn)
	}
}

func (ps *PushServer) serve(conn net.Conn) {
	defer ps.wg.Done()
	defer func() {
		if err := conn.Close(); err != nil {
			log.Printf("ingress: producer %s close: %v", conn.RemoteAddr(), err)
		}
	}()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		t, err := ParseCSV(ps.schema, line)
		if err != nil {
			fmt.Fprintf(conn, "ERR %v\n", err)
			continue
		}
		select {
		case ps.out <- t:
		case <-ps.quit:
			return
		}
	}
}

// Next implements Source: io.EOF after Close.
func (ps *PushServer) Next() (*tuple.Tuple, error) {
	t, ok := <-ps.out
	if !ok {
		return nil, io.EOF
	}
	return t, nil
}

// Connections returns the number of producer connections accepted.
func (ps *PushServer) Connections() int64 { return ps.conns.Load() }

// Close stops the listener, unblocks producers, and ends the source.
func (ps *PushServer) Close() error {
	if ps.closed.Swap(true) {
		return nil
	}
	close(ps.quit)
	err := ps.ln.Close()
	ps.wg.Wait()
	close(ps.out)
	return err
}
