// Package ingress implements the Wrapper side of TelegraphCQ (§4.2.3): the
// operators that move external data into the engine. Wrappers run apart
// from query processing (here: their own goroutines) so no ingress
// operation can block the executor. Two source modalities are supported,
// as in the paper: pull sources, which the wrapper drives (with simulated
// network latency), and push sources, where data arrives on its own —
// either over a local channel (push-client) or a TCP port served by the
// wrapper (push-server). A streamer stamps arrival sequence numbers,
// optionally spools tuples to the storage manager, and hands them to the
// executor over a Fjords connection.
package ingress

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/tuple"
)

// Source produces tuples from somewhere outside the engine.
type Source interface {
	// Next returns the next tuple, blocking as the medium requires.
	// io.EOF signals a cleanly exhausted source.
	Next() (*tuple.Tuple, error)
	// Close releases the source.
	Close() error
}

// FuncSource adapts a generator function (e.g. a workload generator) into
// a pull source with optional simulated per-fetch latency — the remote
// web-source model used by the hybrid-join experiment (E3).
type FuncSource struct {
	fn      func() (*tuple.Tuple, error)
	latency time.Duration
	clk     chaos.Clock
	site    *chaos.Site // nil without injection
	burst   int         // latency-free fetches left in an injected burst
	closed  atomic.Bool
}

// NewFuncSource wraps fn; latency is added to every Next call on the real
// clock. Use NewFuncSourceClock to simulate the latency on a virtual clock.
func NewFuncSource(fn func() (*tuple.Tuple, error), latency time.Duration) *FuncSource {
	return NewFuncSourceClock(fn, latency, nil)
}

// NewFuncSourceClock is NewFuncSource with an injectable clock (nil
// defaults to the real clock), so simulated fetch latency can run on
// virtual time in deterministic tests.
func NewFuncSourceClock(fn func() (*tuple.Tuple, error), latency time.Duration, clk chaos.Clock) *FuncSource {
	if clk == nil {
		clk = chaos.Real()
	}
	return &FuncSource{fn: fn, latency: latency, clk: clk}
}

// NewFuncSourceChaos is NewFuncSourceClock with a fault-decision site: a
// Burst decision suspends the simulated fetch latency for a seeded number
// of fetches, modelling a source that delivers an arrival burst at full
// rate — the overload case downstream queues must shed against (§4.3).
func NewFuncSourceChaos(fn func() (*tuple.Tuple, error), latency time.Duration, clk chaos.Clock, site *chaos.Site) *FuncSource {
	s := NewFuncSourceClock(fn, latency, clk)
	s.site = site
	return s
}

// Next implements Source. It is called from a single streamer goroutine,
// so the burst countdown needs no locking.
func (s *FuncSource) Next() (*tuple.Tuple, error) {
	if s.closed.Load() {
		return nil, io.EOF
	}
	if s.site != nil && s.burst == 0 && s.site.Next() == chaos.Burst {
		s.burst = s.site.BurstSize()
	}
	if s.burst > 0 {
		s.burst--
	} else if s.latency > 0 {
		s.clk.Sleep(s.latency)
	}
	return s.fn()
}

// Close implements Source.
func (s *FuncSource) Close() error {
	s.closed.Store(true)
	return nil
}

// SliceSource replays a fixed tuple slice (tables, tests, recorded traces).
type SliceSource struct {
	tuples []*tuple.Tuple
	i      int
}

// NewSliceSource wraps the given tuples.
func NewSliceSource(tuples []*tuple.Tuple) *SliceSource {
	return &SliceSource{tuples: tuples}
}

// Next implements Source.
func (s *SliceSource) Next() (*tuple.Tuple, error) {
	if s.i >= len(s.tuples) {
		return nil, io.EOF
	}
	t := s.tuples[s.i]
	s.i++
	return t, nil
}

// Close implements Source.
func (s *SliceSource) Close() error { return nil }

// CSVSource parses comma-separated lines from r into tuples matching
// schema. It is the local file reader wrapper of Fig. 1; blank lines and
// lines starting with '#' are skipped.
type CSVSource struct {
	schema *tuple.Schema
	sc     *bufio.Scanner
	closer io.Closer
	line   int
}

// NewCSVSource reads schema-shaped CSV from r.
func NewCSVSource(schema *tuple.Schema, r io.Reader) *CSVSource {
	cs := &CSVSource{schema: schema, sc: bufio.NewScanner(r)}
	if c, ok := r.(io.Closer); ok {
		cs.closer = c
	}
	return cs
}

// Next implements Source.
func (s *CSVSource) Next() (*tuple.Tuple, error) {
	for s.sc.Scan() {
		s.line++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseCSV(s.schema, line)
		if err != nil {
			return nil, fmt.Errorf("ingress: line %d: %w", s.line, err)
		}
		return t, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// Close implements Source.
func (s *CSVSource) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// ParseCSV converts one comma-separated line into a tuple under schema.
func ParseCSV(schema *tuple.Schema, line string) (*tuple.Tuple, error) {
	fields := strings.Split(line, ",")
	if len(fields) != schema.Arity() {
		return nil, fmt.Errorf("want %d fields, got %d", schema.Arity(), len(fields))
	}
	vals := make([]tuple.Value, len(fields))
	for i, f := range fields {
		f = strings.TrimSpace(f)
		col := schema.Columns[i]
		switch col.Kind {
		case tuple.KindInt, tuple.KindTime:
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("field %s: %w", col.Name, err)
			}
			vals[i] = tuple.Value{K: col.Kind, I: v}
		case tuple.KindFloat:
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("field %s: %w", col.Name, err)
			}
			vals[i] = tuple.Float(v)
		case tuple.KindBool:
			v, err := strconv.ParseBool(f)
			if err != nil {
				return nil, fmt.Errorf("field %s: %w", col.Name, err)
			}
			vals[i] = tuple.Bool(v)
		default:
			vals[i] = tuple.String_(f)
		}
	}
	return tuple.New(vals...), nil
}

// FormatCSV renders a tuple as a comma-separated line (inverse of
// ParseCSV; used by egress and the TCP wire protocol).
func FormatCSV(t *tuple.Tuple) string {
	parts := make([]string, len(t.Vals))
	for i, v := range t.Vals {
		if v.K == tuple.KindTime {
			parts[i] = strconv.FormatInt(v.I, 10)
		} else {
			parts[i] = v.String()
		}
	}
	return strings.Join(parts, ",")
}

// OpenCSVFile opens a CSV file as a pull source — the "local file reader"
// wrapper of Fig. 1. The file is closed by Close (or at EOF via the
// streamer's Close call).
func OpenCSVFile(schema *tuple.Schema, path string) (*CSVSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingress: %w", err)
	}
	return NewCSVSource(schema, f), nil
}
