package ingress

import (
	"io"
	"sync/atomic"

	"telegraphcq/internal/fjord"
	"telegraphcq/internal/storage"
	"telegraphcq/internal/tuple"
)

// Streamer produces tuples for one stream (§4.2.3): it drains a Source,
// stamps arrival sequence numbers (the logical notion of time), fills in
// the physical timestamp from a schema column when configured, optionally
// spools every tuple to the storage manager, and delivers to the executor
// over a Fjords connection.
type Streamer struct {
	source  Source
	out     *fjord.Conn
	store   *storage.SegmentStore // optional spool
	timeCol int                   // schema column carrying TS, or -1
	seq     atomic.Int64
	count   atomic.Int64
	drops   atomic.Int64
	errv    atomic.Value // error
	done    chan struct{}
}

// NewStreamer builds a streamer delivering to out. timeCol names the
// column whose value becomes the tuple's TS (-1 leaves TS = Seq). store
// may be nil to skip spooling.
func NewStreamer(source Source, out *fjord.Conn, timeCol int, store *storage.SegmentStore) *Streamer {
	return &Streamer{
		source:  source,
		out:     out,
		store:   store,
		timeCol: timeCol,
		done:    make(chan struct{}),
	}
}

// Start begins pumping in a goroutine; the output connection is closed
// when the source ends.
func (s *Streamer) Start() {
	go func() {
		defer close(s.done)
		defer s.out.Close()
		// Release the source when the pump ends; a close failure is the
		// run's error when nothing upstream failed first (single-writer
		// goroutine, so the load/store pair is race-free).
		defer func() {
			if err := s.source.Close(); err != nil && s.errv.Load() == nil {
				s.errv.Store(err)
			}
		}()
		for {
			t, err := s.source.Next()
			if err != nil {
				if err != io.EOF {
					s.errv.Store(err)
				}
				return
			}
			s.Stamp(t)
			if s.store != nil {
				if err := s.store.Append(t); err != nil {
					s.errv.Store(err)
					return
				}
			}
			if !s.out.Send(t) {
				// Push connection full: the non-blocking contract says
				// shed here (§4.3); the spool retains the tuple for
				// history and the drop is counted so overload runs can
				// audit delivered + shed == produced.
				s.drops.Add(1)
				continue
			}
			s.count.Add(1)
		}
	}()
}

// Stamp assigns the arrival sequence number and physical timestamp.
func (s *Streamer) Stamp(t *tuple.Tuple) {
	t.Seq = s.seq.Add(1)
	if s.timeCol >= 0 && s.timeCol < len(t.Vals) {
		t.TS = t.Vals[s.timeCol].AsInt()
	} else {
		t.TS = t.Seq
	}
}

// Wait blocks until the streamer finishes and returns its error, if any.
func (s *Streamer) Wait() error {
	<-s.done
	if e := s.errv.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// Delivered returns the number of tuples sent downstream.
func (s *Streamer) Delivered() int64 { return s.count.Load() }

// Drops returns the number of tuples shed at a full push connection.
func (s *Streamer) Drops() int64 { return s.drops.Load() }
