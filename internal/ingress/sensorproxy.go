package ingress

import (
	"io"
	"sync"

	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

// SensorProxy is the sophisticated ingress module of §2.1: besides reading
// a sensor network, it sends control messages back — adjusting the sample
// rate of the sensors based on the queries currently being processed
// [MF02]. Here the sensor network is the workload simulator; the control
// loop is real: registering a query demanding rate r raises the network's
// sample rate to the maximum demanded rate, and deregistering lowers it.
type SensorProxy struct {
	mu       sync.Mutex
	gen      *workload.SensorGenerator
	demands  map[int]int // query id -> demanded rate
	baseline int
	pending  []*tuple.Tuple
	closed   bool

	adjustments int
}

// NewSensorProxy wraps a sensor generator whose idle rate is baseline.
func NewSensorProxy(gen *workload.SensorGenerator, baseline int) *SensorProxy {
	gen.SampleRate = baseline
	return &SensorProxy{
		gen:      gen,
		demands:  make(map[int]int),
		baseline: baseline,
	}
}

// Demand registers query q's required sample rate; the proxy pushes the
// new effective rate into the sensor network.
func (p *SensorProxy) Demand(q, rate int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.demands[q] = rate
	p.retune()
}

// Release drops query q's demand.
func (p *SensorProxy) Release(q int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.demands, q)
	p.retune()
}

func (p *SensorProxy) retune() {
	rate := p.baseline
	for _, r := range p.demands {
		if r > rate {
			rate = r
		}
	}
	if p.gen.SampleRate != rate {
		p.gen.SampleRate = rate
		p.adjustments++
	}
}

// Rate returns the sensor network's current sample rate.
func (p *SensorProxy) Rate() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen.SampleRate
}

// Adjustments returns how many control messages were sent to the network.
func (p *SensorProxy) Adjustments() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.adjustments
}

// Next implements Source: readings drain tick by tick.
func (p *SensorProxy) Next() (*tuple.Tuple, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, io.EOF
	}
	for len(p.pending) == 0 {
		p.pending = p.gen.Tick()
	}
	t := p.pending[0]
	p.pending = p.pending[1:]
	return t, nil
}

// Close implements Source.
func (p *SensorProxy) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	return nil
}
