package ingress

import (
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/storage"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

func TestParseCSV(t *testing.T) {
	s := workload.StockSchema()
	tp, err := ParseCSV(s, "5, MSFT, 57.25")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Vals[0].AsInt() != 5 || tp.Vals[1].AsString() != "MSFT" || tp.Vals[2].AsFloat() != 57.25 {
		t.Errorf("parsed = %v", tp)
	}
}

func TestParseCSVErrors(t *testing.T) {
	s := workload.StockSchema()
	if _, err := ParseCSV(s, "1,MSFT"); err == nil {
		t.Error("missing field accepted")
	}
	if _, err := ParseCSV(s, "x,MSFT,1.0"); err == nil {
		t.Error("bad int accepted")
	}
	if _, err := ParseCSV(s, "1,MSFT,abc"); err == nil {
		t.Error("bad float accepted")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	s := workload.StockSchema()
	in, _ := ParseCSV(s, "9,IBM,88.5")
	line := FormatCSV(in)
	out, err := ParseCSV(s, line)
	if err != nil {
		t.Fatalf("%q: %v", line, err)
	}
	for i := range in.Vals {
		if !tuple.Equal(in.Vals[i], out.Vals[i]) {
			t.Errorf("val %d: %v != %v", i, in.Vals[i], out.Vals[i])
		}
	}
}

func TestCSVSource(t *testing.T) {
	s := workload.StockSchema()
	input := "# header comment\n1,MSFT,50\n\n2,IBM,60\n"
	src := NewCSVSource(s, strings.NewReader(input))
	var got []*tuple.Tuple
	for {
		tp, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tp)
	}
	if len(got) != 2 {
		t.Fatalf("tuples = %d", len(got))
	}
}

func TestCSVSourceBadLine(t *testing.T) {
	src := NewCSVSource(workload.StockSchema(), strings.NewReader("bad line\n"))
	if _, err := src.Next(); err == nil {
		t.Error("bad line accepted")
	}
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource([]*tuple.Tuple{tuple.New(tuple.Int(1))})
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestStreamerStampsAndDelivers(t *testing.T) {
	s := workload.StockSchema()
	src := NewCSVSource(s, strings.NewReader("7,MSFT,50\n9,IBM,60\n"))
	out := fjord.NewConn(fjord.Pull, 8)
	st := NewStreamer(src, out, 0, nil) // timeCol 0
	st.Start()
	var got []*tuple.Tuple
	for {
		tp, ok := out.Recv()
		if !ok {
			break
		}
		got = append(got, tp)
	}
	if err := st.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered = %d", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("seqs = %d, %d", got[0].Seq, got[1].Seq)
	}
	if got[0].TS != 7 || got[1].TS != 9 {
		t.Errorf("ts = %d, %d", got[0].TS, got[1].TS)
	}
	if st.Delivered() != 2 {
		t.Errorf("Delivered = %d", st.Delivered())
	}
}

func TestStreamerSpools(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.NewSegmentStore(dir, "s", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewStockGenerator(1, nil)
	i := 0
	src := NewFuncSource(func() (*tuple.Tuple, error) {
		if i >= 10 {
			return nil, io.EOF
		}
		i++
		return gen.Next(), nil
	}, 0)
	out := fjord.NewConn(fjord.Pull, 32)
	st := NewStreamer(src, out, 0, store)
	st.Start()
	for {
		if _, ok := out.Recv(); !ok {
			break
		}
	}
	st.Wait()
	store.Flush()
	spooled, err := store.ScanRange(-1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(spooled) != 10 {
		t.Errorf("spooled = %d", len(spooled))
	}
}

func TestPushServer(t *testing.T) {
	s := workload.StockSchema()
	ps, err := NewPushServer(s, "127.0.0.1:0", 16)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ps.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "1,MSFT,50\n2,IBM,60\n")
	conn.Close()

	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < 2 {
			if _, err := ps.Next(); err != nil {
				return
			}
			got++
		}
	}()
	select {
	case <-done:
	case <-chaos.Real().After(5 * time.Second):
		t.Fatal("timed out waiting for pushed tuples")
	}
	if ps.Connections() != 1 {
		t.Errorf("connections = %d", ps.Connections())
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Next(); err != io.EOF {
		t.Errorf("after close err = %v", err)
	}
	if err := ps.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestPushServerBadLineReportsError(t *testing.T) {
	ps, err := NewPushServer(workload.StockSchema(), "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	conn, err := net.Dial("tcp", ps.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "not,valid\n")
	buf := make([]byte, 64)
	conn.SetReadDeadline(chaos.Real().Now().Add(5 * time.Second))
	n, err := conn.Read(buf)
	if err != nil || !strings.HasPrefix(string(buf[:n]), "ERR") {
		t.Errorf("expected ERR reply, got %q (%v)", buf[:n], err)
	}
}

func TestSensorProxyControlLoop(t *testing.T) {
	gen := workload.NewSensorGenerator(1, 2, 1)
	p := NewSensorProxy(gen, 1)
	if p.Rate() != 1 {
		t.Fatalf("baseline = %d", p.Rate())
	}
	p.Demand(1, 4)
	p.Demand(2, 8)
	if p.Rate() != 8 {
		t.Errorf("rate = %d, want 8", p.Rate())
	}
	p.Release(2)
	if p.Rate() != 4 {
		t.Errorf("rate = %d, want 4", p.Rate())
	}
	p.Release(1)
	if p.Rate() != 1 {
		t.Errorf("rate = %d, want baseline 1", p.Rate())
	}
	if p.Adjustments() != 4 {
		t.Errorf("adjustments = %d", p.Adjustments())
	}
	// Readings flow at the tuned rate.
	tp, err := p.Next()
	if err != nil || len(tp.Vals) != 4 {
		t.Errorf("reading = %v, %v", tp, err)
	}
	p.Close()
	if _, err := p.Next(); err != io.EOF {
		t.Errorf("after close: %v", err)
	}
}

func TestFuncSourceLatency(t *testing.T) {
	// The simulated fetch latency runs on a virtual clock, so the test
	// asserts the exact delay without spending wall time on it.
	clk := chaos.NewVirtual(time.Unix(0, 0))
	clk.SetAutoAdvance(true)
	src := NewFuncSourceClock(func() (*tuple.Tuple, error) {
		return tuple.New(tuple.Int(1)), nil
	}, 2*time.Millisecond, clk)
	start := clk.Now()
	src.Next()
	if got := clk.Since(start); got != 2*time.Millisecond {
		t.Errorf("virtual latency = %v, want 2ms", got)
	}
	src.Close()
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("after close: %v", err)
	}
}

func TestOpenCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/stocks.csv"
	if err := os.WriteFile(path, []byte("1,MSFT,50\n2,IBM,60\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenCSVFile(workload.StockSchema(), path)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("rows = %d", n)
	}
	if err := src.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := OpenCSVFile(workload.StockSchema(), dir+"/missing.csv"); err == nil {
		t.Error("missing file accepted")
	}
}
