package catalog

import (
	"sync"
	"testing"

	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

func schema() *tuple.Schema {
	return tuple.NewSchema("s",
		tuple.Column{Name: "ts", Kind: tuple.KindTime},
		tuple.Column{Name: "x", Kind: tuple.KindInt})
}

func TestCreateLookupDrop(t *testing.T) {
	c := New()
	e, err := c.CreateStream("s", schema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != Stream || e.TimeKind != window.Physical {
		t.Errorf("entry = %+v", e)
	}
	got, err := c.Lookup("s")
	if err != nil || got != e {
		t.Errorf("lookup = %v, %v", got, err)
	}
	if _, err := c.CreateStream("s", schema(), 0); err == nil {
		t.Error("duplicate create succeeded")
	}
	if err := c.Drop("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("s"); err == nil {
		t.Error("lookup after drop succeeded")
	}
	if err := c.Drop("s"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestLogicalTimeDefault(t *testing.T) {
	c := New()
	e, _ := c.CreateStream("s", schema(), -1)
	if e.TimeKind != window.Logical {
		t.Errorf("time kind = %s", e.TimeKind)
	}
}

func TestTables(t *testing.T) {
	c := New()
	e, err := c.CreateTable("t", schema())
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != Table || e.Kind.String() != "TABLE" {
		t.Errorf("kind = %v", e.Kind)
	}
}

func TestWrapper(t *testing.T) {
	c := New()
	c.CreateStream("s", schema(), 0)
	if err := c.SetWrapper("s", "tess"); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Lookup("s")
	if e.Wrapper != "tess" {
		t.Errorf("wrapper = %q", e.Wrapper)
	}
	if err := c.SetWrapper("nope", "x"); err == nil {
		t.Error("wrapper on unknown relation succeeded")
	}
}

func TestListSorted(t *testing.T) {
	c := New()
	c.CreateStream("zeta", schema(), 0)
	c.CreateStream("alpha", schema(), 0)
	c.CreateTable("mid", schema())
	names := []string{}
	for _, e := range c.List() {
		names = append(names, e.Name)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("list = %v", names)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			c.CreateStream(name, schema(), 0)
			c.Lookup(name)
			c.List()
		}(i)
	}
	wg.Wait()
	if len(c.List()) != 8 {
		t.Errorf("entries = %d", len(c.List()))
	}
}
