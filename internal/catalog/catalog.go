// Package catalog maintains the metadata of streams, tables, and their
// ingress wrappers — the role PostgreSQL's system catalog plays in the
// TelegraphCQ front end (Fig. 4–5). The catalog is shared by every
// connection's parser/planner, so it is safe for concurrent use.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// SourceKind distinguishes unbounded streams from static tables.
type SourceKind uint8

// Source kinds.
const (
	Stream SourceKind = iota
	Table
)

// String names the kind.
func (k SourceKind) String() string {
	if k == Stream {
		return "STREAM"
	}
	return "TABLE"
}

// Entry describes one registered relation.
type Entry struct {
	Name   string
	Kind   SourceKind
	Schema *tuple.Schema
	// TimeCol is the column carrying the stream's application timestamp,
	// or -1 to use arrival sequence numbers (logical time, §4.1.1).
	TimeCol int
	// TimeKind is the default notion of time for windows on this stream.
	TimeKind window.TimeKind
	// Wrapper names the ingress wrapper feeding this stream ("" for
	// tables and locally fed streams).
	Wrapper string
}

// Catalog is the registry. The zero value is unusable; use New.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{entries: make(map[string]*Entry)}
}

// CreateStream registers a stream. timeCol < 0 selects logical time.
func (c *Catalog) CreateStream(name string, schema *tuple.Schema, timeCol int) (*Entry, error) {
	kind := window.Physical
	if timeCol < 0 {
		kind = window.Logical
	}
	return c.create(&Entry{Name: name, Kind: Stream, Schema: schema,
		TimeCol: timeCol, TimeKind: kind})
}

// CreateTable registers a static table.
func (c *Catalog) CreateTable(name string, schema *tuple.Schema) (*Entry, error) {
	return c.create(&Entry{Name: name, Kind: Table, Schema: schema, TimeCol: -1})
}

func (c *Catalog) create(e *Entry) (*Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[e.Name]; dup {
		return nil, fmt.Errorf("catalog: relation %q already exists", e.Name)
	}
	c.entries[e.Name] = e
	return e, nil
}

// SetWrapper records which ingress wrapper feeds a stream.
func (c *Catalog) SetWrapper(name, wrapper string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return fmt.Errorf("catalog: relation %q not found", name)
	}
	e.Wrapper = wrapper
	return nil
}

// Lookup finds a relation by name.
func (c *Catalog) Lookup(name string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("catalog: relation %q not found", name)
	}
	return e, nil
}

// Drop removes a relation.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; !ok {
		return fmt.Errorf("catalog: relation %q not found", name)
	}
	delete(c.entries, name)
	return nil
}

// List returns all entries sorted by name.
func (c *Catalog) List() []*Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
