// Package executor implements the TelegraphCQ execution model (§4.2.2):
// a small set of Execution Objects (EOs) — goroutine-backed threads of
// control visible to the runtime — each scheduling many non-preemptive
// Dispatch Units (DUs) that encode queries as cooperative state machines.
// Queries are partitioned into classes by their footprint (the set of
// streams and tables they read); queries in one class share one EO and
// therefore can share physical SteMs and grouped filters, while disjoint
// classes are isolated for scheduling and resource management.
package executor

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/chaos"
)

// DispatchUnit is a cooperative unit of work: Step performs a bounded
// amount of processing and returns. DUs are never preempted mid-Step; an
// EO interleaves its DUs round-robin (the Fjords discipline gives control
// back voluntarily, §2.3).
type DispatchUnit interface {
	// Name identifies the DU in stats.
	Name() string
	// Step runs one bounded slice of work. progressed=false signals the
	// DU had nothing to do (lets the EO sleep when all DUs are idle);
	// done=true removes the DU from its EO.
	Step() (progressed, done bool)
}

// FuncDU adapts a function to DispatchUnit.
type FuncDU struct {
	DUName string
	Fn     func() (progressed, done bool)
}

// Name implements DispatchUnit.
func (f *FuncDU) Name() string { return f.DUName }

// Step implements DispatchUnit.
func (f *FuncDU) Step() (bool, bool) { return f.Fn() }

// ExecutionObject is one scheduler thread multiplexing DUs.
type ExecutionObject struct {
	ID    int
	clock chaos.Clock

	mu   sync.Mutex
	dus  []DispatchUnit
	cond *sync.Cond

	quit   chan struct{}
	done   chan struct{}
	steps  atomic.Int64
	idle   atomic.Int64
	panics atomic.Int64
}

func newEO(id int, clk chaos.Clock) *ExecutionObject {
	eo := &ExecutionObject{ID: id, clock: clk, quit: make(chan struct{}), done: make(chan struct{})}
	eo.cond = sync.NewCond(&eo.mu)
	go eo.run()
	return eo
}

// Attach schedules a DU on this EO.
func (eo *ExecutionObject) Attach(du DispatchUnit) {
	eo.mu.Lock()
	eo.dus = append(eo.dus, du)
	eo.mu.Unlock()
	eo.cond.Signal()
}

// DUCount returns the number of scheduled DUs.
func (eo *ExecutionObject) DUCount() int {
	eo.mu.Lock()
	defer eo.mu.Unlock()
	return len(eo.dus)
}

// Steps returns the lifetime number of DU steps executed.
func (eo *ExecutionObject) Steps() int64 { return eo.steps.Load() }

// Panics returns the number of DUs retired after panicking.
func (eo *ExecutionObject) Panics() int64 { return eo.panics.Load() }

func (eo *ExecutionObject) run() {
	defer close(eo.done)
	for {
		select {
		case <-eo.quit:
			return
		default:
		}
		eo.mu.Lock()
		dus := append([]DispatchUnit(nil), eo.dus...)
		eo.mu.Unlock()
		if len(dus) == 0 {
			eo.waitForWork()
			continue
		}
		anyProgress := false
		var finished []DispatchUnit
		for _, du := range dus {
			progressed, done := eo.safeStep(du)
			eo.steps.Add(1)
			if progressed {
				anyProgress = true
			}
			if done {
				finished = append(finished, du)
			}
		}
		if len(finished) > 0 {
			eo.mu.Lock()
			for _, f := range finished {
				for i, du := range eo.dus {
					if du == f {
						eo.dus = append(eo.dus[:i], eo.dus[i+1:]...)
						break
					}
				}
			}
			eo.mu.Unlock()
		}
		if !anyProgress {
			eo.idle.Add(1)
			// All DUs idle: brief sleep rather than a busy spin. DUs
			// poll their non-blocking Fjord inputs on the next pass.
			eo.clock.Sleep(100 * time.Microsecond)
		}
	}
}

// safeStep contains a panicking DU: the faulty query is retired and
// logged while the EO and its other DUs keep running — per-query fault
// containment inside one scheduler thread.
func (eo *ExecutionObject) safeStep(du DispatchUnit) (progressed, done bool) {
	defer func() {
		if r := recover(); r != nil {
			log.Printf("executor: DU %s panicked and was retired: %v", du.Name(), r)
			eo.panics.Add(1)
			progressed, done = false, true
		}
	}()
	return du.Step()
}

func (eo *ExecutionObject) waitForWork() {
	eo.mu.Lock()
	defer eo.mu.Unlock()
	for len(eo.dus) == 0 {
		select {
		case <-eo.quit:
			return
		default:
		}
		// Timed wait so quit is honored promptly.
		t := eo.clock.AfterFunc(time.Millisecond, eo.cond.Signal)
		eo.cond.Wait()
		t.Stop()
	}
}

func (eo *ExecutionObject) stop() {
	close(eo.quit)
	eo.cond.Broadcast()
	<-eo.done
}

// Executor owns the EO pool and the footprint→class→EO mapping.
type Executor struct {
	eos []*ExecutionObject

	mu      sync.Mutex
	parent  map[string]string // union-find over stream names
	classEO map[string]int    // class root -> EO index
	nextEO  int
	stopped bool
}

// New creates an executor with n Execution Objects (n ≥ 1) on the wall
// clock.
func New(n int) *Executor { return NewWithClock(n, chaos.Real()) }

// NewWithClock creates an executor whose EOs pace their idle backoff and
// wakeup timers through clk, so schedulers under a VirtualClock are
// deterministic.
func NewWithClock(n int, clk chaos.Clock) *Executor {
	if n < 1 {
		n = 1
	}
	x := &Executor{
		parent:  make(map[string]string),
		classEO: make(map[string]int),
	}
	for i := 0; i < n; i++ {
		x.eos = append(x.eos, newEO(i, clk))
	}
	return x
}

// EOs exposes the execution objects (stats, tests).
func (x *Executor) EOs() []*ExecutionObject { return x.eos }

func (x *Executor) find(s string) string {
	root := s
	for {
		p, ok := x.parent[root]
		if !ok || p == root {
			break
		}
		root = p
	}
	// Path compression.
	for s != root {
		next := x.parent[s]
		x.parent[s] = root
		s = next
	}
	if _, ok := x.parent[root]; !ok {
		x.parent[root] = root
	}
	return root
}

// ClassFor unions the given streams into one query class and returns its
// canonical key. Queries whose footprints overlap transitively end up in
// the same class (§4.2.2: "query classes for disjoint sets of
// footprints").
func (x *Executor) ClassFor(streams []string) string {
	if len(streams) == 0 {
		return ""
	}
	sorted := append([]string(nil), streams...)
	sort.Strings(sorted)
	x.mu.Lock()
	defer x.mu.Unlock()
	root := x.find(sorted[0])
	for _, s := range sorted[1:] {
		r := x.find(s)
		if r != root {
			// Union: the newly absorbed class keeps the older root so
			// its EO assignment is stable.
			if _, assigned := x.classEO[root]; assigned {
				x.parent[r] = root
			} else {
				x.parent[root] = r
				root = r
			}
		}
	}
	return root
}

// EOForClass returns the EO owning a class, assigning one round-robin on
// first use.
func (x *Executor) EOForClass(class string) *ExecutionObject {
	x.mu.Lock()
	defer x.mu.Unlock()
	root := x.find(class)
	if i, ok := x.classEO[root]; ok {
		return x.eos[i]
	}
	i := x.nextEO % len(x.eos)
	x.nextEO++
	x.classEO[root] = i
	return x.eos[i]
}

// Submit schedules a DU under the class that owns the given streams.
func (x *Executor) Submit(streams []string, du DispatchUnit) *ExecutionObject {
	class := x.ClassFor(streams)
	eo := x.EOForClass(class)
	eo.Attach(du)
	return eo
}

// Stop shuts down all EOs, waiting for their loops to exit. Stop is
// idempotent.
func (x *Executor) Stop() {
	x.mu.Lock()
	if x.stopped {
		x.mu.Unlock()
		return
	}
	x.stopped = true
	x.mu.Unlock()
	for _, eo := range x.eos {
		eo.stop()
	}
}

// String summarizes executor state.
func (x *Executor) String() string {
	var b strings.Builder
	for _, eo := range x.eos {
		fmt.Fprintf(&b, "EO%d: %d DUs, %d steps; ", eo.ID, eo.DUCount(), eo.Steps())
	}
	return strings.TrimSuffix(b.String(), "; ")
}
