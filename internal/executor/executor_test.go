package executor

import (
	"sync/atomic"
	"testing"
	"time"

	"telegraphcq/internal/chaos"
)

func TestDURunsAndFinishes(t *testing.T) {
	x := New(1)
	defer x.Stop()
	var n atomic.Int64
	x.Submit([]string{"s"}, &FuncDU{DUName: "count", Fn: func() (bool, bool) {
		v := n.Add(1)
		return true, v >= 10
	}})
	deadline := chaos.Real().After(5 * time.Second)
	for n.Load() < 10 {
		select {
		case <-deadline:
			t.Fatalf("DU ran %d steps", n.Load())
		default:
			chaos.Real().Sleep(time.Millisecond)
		}
	}
	// After done=true the DU is removed.
	chaos.Real().Sleep(10 * time.Millisecond)
	if got := n.Load(); got != 10 {
		t.Errorf("DU stepped %d times after done", got)
	}
	if x.EOs()[0].DUCount() != 0 {
		t.Error("finished DU not removed")
	}
}

func TestMultipleDUsInterleave(t *testing.T) {
	x := New(1)
	defer x.Stop()
	var a, b atomic.Int64
	x.Submit([]string{"s1"}, &FuncDU{DUName: "a", Fn: func() (bool, bool) {
		a.Add(1)
		return true, false
	}})
	x.Submit([]string{"s1"}, &FuncDU{DUName: "b", Fn: func() (bool, bool) {
		b.Add(1)
		return true, false
	}})
	chaos.Real().Sleep(20 * time.Millisecond)
	av, bv := a.Load(), b.Load()
	if av == 0 || bv == 0 {
		t.Fatalf("DUs did not interleave: a=%d b=%d", av, bv)
	}
	// Round-robin fairness: counts within a factor of 2.
	if av > 2*bv+4 || bv > 2*av+4 {
		t.Errorf("unfair scheduling: a=%d b=%d", av, bv)
	}
}

func TestIdleDUsDoNotSpinHot(t *testing.T) {
	x := New(1)
	defer x.Stop()
	var steps atomic.Int64
	x.Submit([]string{"s"}, &FuncDU{DUName: "idle", Fn: func() (bool, bool) {
		steps.Add(1)
		return false, false // never progresses
	}})
	chaos.Real().Sleep(20 * time.Millisecond)
	// With a 100µs idle sleep, 20ms permits ~200 steps; a hot spin would
	// show orders of magnitude more.
	if s := steps.Load(); s > 2000 {
		t.Errorf("idle DU stepped %d times in 20ms (spinning)", s)
	}
	if x.EOs()[0].idle.Load() == 0 {
		t.Error("idle passes not recorded")
	}
}

func TestFootprintClasses(t *testing.T) {
	x := New(4)
	defer x.Stop()
	// Queries over {A}, {B}, {A,B}: all three must collapse into one
	// class; {C} stays separate.
	c1 := x.ClassFor([]string{"A"})
	c2 := x.ClassFor([]string{"B"})
	if c1 == c2 {
		t.Fatal("disjoint classes merged prematurely")
	}
	c3 := x.ClassFor([]string{"A", "B"})
	if x.ClassFor([]string{"A"}) != c3 || x.ClassFor([]string{"B"}) != c3 {
		t.Error("overlapping footprints not merged")
	}
	c4 := x.ClassFor([]string{"C"})
	if c4 == c3 {
		t.Error("unrelated stream merged")
	}
}

func TestClassEOStability(t *testing.T) {
	x := New(4)
	defer x.Stop()
	classA := x.ClassFor([]string{"A"})
	eoA := x.EOForClass(classA)
	// Merging B into A's class must keep A's EO.
	x.ClassFor([]string{"A", "B"})
	if got := x.EOForClass(x.ClassFor([]string{"B"})); got != eoA {
		t.Errorf("class EO changed after merge: %d -> %d", eoA.ID, got.ID)
	}
}

func TestDisjointClassesSpreadOverEOs(t *testing.T) {
	x := New(2)
	defer x.Stop()
	eo1 := x.Submit([]string{"S1"}, &FuncDU{DUName: "q1", Fn: func() (bool, bool) { return false, false }})
	eo2 := x.Submit([]string{"S2"}, &FuncDU{DUName: "q2", Fn: func() (bool, bool) { return false, false }})
	if eo1 == eo2 {
		t.Error("disjoint classes share an EO despite free capacity")
	}
}

func TestSubmitSameClassSameEO(t *testing.T) {
	x := New(4)
	defer x.Stop()
	eo1 := x.Submit([]string{"S"}, &FuncDU{DUName: "q1", Fn: func() (bool, bool) { return false, false }})
	eo2 := x.Submit([]string{"S"}, &FuncDU{DUName: "q2", Fn: func() (bool, bool) { return false, false }})
	if eo1 != eo2 {
		t.Error("same-footprint queries landed on different EOs")
	}
	if eo1.DUCount() != 2 {
		t.Errorf("DU count = %d", eo1.DUCount())
	}
}

func TestStopTerminates(t *testing.T) {
	x := New(3)
	x.Submit([]string{"s"}, &FuncDU{DUName: "q", Fn: func() (bool, bool) { return true, false }})
	done := make(chan struct{})
	go func() {
		x.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-chaos.Real().After(5 * time.Second):
		t.Fatal("Stop did not terminate")
	}
}

func TestStringSummary(t *testing.T) {
	x := New(2)
	defer x.Stop()
	if s := x.String(); s == "" {
		t.Error("empty summary")
	}
}

func TestPanickingDUIsContained(t *testing.T) {
	x := New(1)
	defer x.Stop()
	var healthy atomic.Int64
	x.Submit([]string{"a"}, &FuncDU{DUName: "bomb", Fn: func() (bool, bool) {
		panic("boom")
	}})
	x.Submit([]string{"a"}, &FuncDU{DUName: "healthy", Fn: func() (bool, bool) {
		healthy.Add(1)
		return true, false
	}})
	deadline := chaos.Real().Now().Add(5 * time.Second)
	for healthy.Load() < 10 && chaos.Real().Now().Before(deadline) {
		chaos.Real().Sleep(time.Millisecond)
	}
	if healthy.Load() < 10 {
		t.Fatal("healthy DU starved after sibling panic")
	}
	eo := x.EOs()[0]
	if eo.Panics() != 1 {
		t.Errorf("panics = %d", eo.Panics())
	}
	if eo.DUCount() != 1 {
		t.Errorf("DU count = %d (panicked DU not retired)", eo.DUCount())
	}
}
