package metrics

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`tcq_engine_ingested_total{stream="S"}`).Add(3)
	reg.Histogram(`tcq_hop_latency_seconds{module="SteM(\"S\")"}`, 16).Record(time.Millisecond)
	h := Handler(reg)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("/metrics status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(rr.Body)
	text := string(body)
	if !strings.Contains(text, `tcq_engine_ingested_total{stream="S"} 3`) {
		t.Errorf("counter missing from exposition:\n%s", text)
	}
	// Module names containing quotes must survive exposition: the label
	// value was built with %q so inner quotes arrive backslash-escaped.
	if !strings.Contains(text, `module="SteM(\"S\")"`) {
		t.Errorf("escaped label missing from exposition:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE tcq_hop_latency_seconds summary") {
		t.Errorf("histogram TYPE line missing:\n%s", text)
	}
	if !strings.Contains(text, `quantile="0.99"`) {
		t.Errorf("summary quantiles missing:\n%s", text)
	}
}

func TestHandlerHealthz(t *testing.T) {
	h := Handler(NewRegistry())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 || rr.Body.String() != "ok\n" {
		t.Fatalf("/healthz = %d %q", rr.Code, rr.Body.String())
	}
}

func TestHandlerPprofRoutes(t *testing.T) {
	h := Handler(NewRegistry())
	// Index and symbol respond synchronously; profile/trace would block
	// for their sampling window, so only assert they are routed (anything
	// but 404 proves registration).
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != 200 {
			t.Errorf("%s status = %d", path, rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/heap", nil))
	if rr.Code != 200 {
		t.Errorf("/debug/pprof/heap (via Index catch-all) status = %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/nope", nil))
	if rr.Code != 404 {
		t.Errorf("unknown path status = %d, want 404", rr.Code)
	}
}
