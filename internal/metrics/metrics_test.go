package metrics

import (
	"sync"
	"testing"
	"time"

	"telegraphcq/internal/chaos"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("value = %d", c.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(100)
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 50*time.Millisecond || mean > 51*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if q := h.Quantile(1.0); q != 100*time.Millisecond {
		t.Errorf("p100 = %v", q)
	}
	if h.String() == "" {
		t.Error("empty summary")
	}
}

func TestHistogramReservoir(t *testing.T) {
	h := NewHistogram(16)
	for i := 0; i < 10000; i++ {
		h.Record(time.Millisecond)
	}
	if h.Count() != 10000 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Quantile(0.5) != time.Millisecond {
		t.Errorf("p50 = %v", h.Quantile(0.5))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(4)
	if h.Mean() != 0 || h.Quantile(0.9) != 0 || h.Max() != 0 {
		t.Error("empty histogram nonzero")
	}
}

func TestThroughput(t *testing.T) {
	var tp Throughput
	vc := chaos.NewVirtual(time.Unix(0, 0))
	tp.SetClock(vc)
	tp.Start()
	tp.Add(1000)
	vc.Advance(10 * time.Millisecond)
	if r := tp.Rate(); r != 100000 {
		t.Errorf("rate = %f, want 100000", r)
	}
}
