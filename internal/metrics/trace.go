package metrics

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Span is one timed module visit on a traced tuple's path through an eddy:
// enter/exit timestamps (read from the eddy's injected clock, so traced
// runs on a virtual clock stay deterministic), the routing outcome, and
// the fan-out the visit produced.
type Span struct {
	Module   string
	Start    time.Time
	End      time.Time
	Pass     bool
	Produced int
}

// Latency returns the module residence time (End - Start).
func (s Span) Latency() time.Duration { return s.End.Sub(s.Start) }

// Trace is the recorded lineage of one sampled tuple: the module-visit
// path the eddy's routing policy chose for it, as timestamped spans.
// Join outputs forked from a traced tuple inherit its spans so far; the
// fork edge itself is preserved in ForkOf/ForkSpans.
type Trace struct {
	Tag     string // owning eddy ("q<id>" or "shared:<stream>")
	Seq     int64  // arrival sequence number of the sampled tuple
	Spans   []Span
	Emitted bool // reached the query's output (vs dropped/absorbed)

	// Forked marks traces started by Fork (join outputs). ForkOf is the
	// parent's Seq and ForkSpans how many leading spans were inherited
	// from it, so the join-fork edge of the derivation tree survives.
	Forked    bool
	ForkOf    int64
	ForkSpans int
}

// Latency returns the span-covered processing time: the elapsed clock time
// from the first span's entry to the last span's exit (0 with no spans).
func (t *Trace) Latency() time.Duration {
	if len(t.Spans) == 0 {
		return 0
	}
	return t.Spans[len(t.Spans)-1].End.Sub(t.Spans[0].Start)
}

// Path renders the module-visit path as "mod:lat:pass+produced -> ...".
func (t *Trace) Path() string {
	parts := make([]string, len(t.Spans))
	for i, s := range t.Spans {
		outcome := "drop"
		if s.Pass {
			outcome = "pass"
		}
		parts[i] = fmt.Sprintf("%s:%v:%s+%d", s.Module, s.Latency(), outcome, s.Produced)
	}
	path := strings.Join(parts, " -> ")
	if path == "" {
		path = "(no visits)"
	}
	return path
}

// String renders the trace as a single diagnostic line.
func (t *Trace) String() string {
	fork := ""
	if t.Forked {
		fork = fmt.Sprintf(" fork-of=%d@%d", t.ForkOf, t.ForkSpans)
	}
	return fmt.Sprintf("seq=%d emitted=%v hops=%d%s path=%s", t.Seq, t.Emitted, len(t.Spans), fork, t.Path())
}

// Tracer samples tuples entering an eddy and records their routing path.
// Keys are opaque tuple identities (pointers); live entries move to a
// bounded per-tag ring when the tuple finishes, and the tag set itself is
// LRU-capped, so memory stays constant regardless of stream volume and of
// how many distinct eddies (queries) come and go. All methods are
// concurrent-safe.
type Tracer struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rate    float64
	keep    int
	maxTags int
	live    map[any]*Trace
	recent  map[string][]*Trace
	// tagUse orders tags by last Finish for LRU eviction.
	tagUse map[string]int64
	useSeq int64

	// sink, when set, observes every finished trace (the introspection
	// subsystem feeds tcq.routes from it). Called outside the lock.
	sink func(*Trace)
	// reg, when set, receives per-module span latencies as the
	// tcq_hop_latency_seconds{module=...} histogram family; hists caches
	// the per-module histograms so the hot span path never formats names.
	reg   *Registry
	hists map[string]*Histogram
}

// defaultMaxTags bounds the distinct trace tags retained; tags beyond the
// cap evict the least-recently-finished one.
const defaultMaxTags = 64

// NewTracer samples at the given probability (clamped to [0,1]) with a
// deterministic seed, keeping the last keep finished traces per tag.
func NewTracer(rate float64, seed int64, keep int) *Tracer {
	if rate > 1 {
		rate = 1
	}
	if keep <= 0 {
		keep = 32
	}
	return &Tracer{
		rng:     rand.New(rand.NewSource(seed)),
		rate:    rate,
		keep:    keep,
		maxTags: defaultMaxTags,
		live:    make(map[any]*Trace),
		recent:  make(map[string][]*Trace),
		tagUse:  make(map[string]int64),
	}
}

// Rate returns the configured sample probability.
func (tr *Tracer) Rate() float64 { return tr.rate }

// SetMaxTags bounds the number of distinct tags with retained traces
// (values < 1 keep the default). Call before tracing begins.
func (tr *Tracer) SetMaxTags(n int) {
	if n < 1 {
		return
	}
	tr.mu.Lock()
	tr.maxTags = n
	tr.mu.Unlock()
}

// SetSink installs fn to observe every finished trace. The callback runs
// on the eddy's goroutine outside the tracer lock and must not block.
func (tr *Tracer) SetSink(fn func(*Trace)) {
	tr.mu.Lock()
	tr.sink = fn
	tr.mu.Unlock()
}

// ExportHistograms mirrors every recorded span into reg as the
// tcq_hop_latency_seconds{module="..."} histogram family.
func (tr *Tracer) ExportHistograms(reg *Registry) {
	tr.mu.Lock()
	tr.reg = reg
	tr.hists = make(map[string]*Histogram)
	tr.mu.Unlock()
}

// Sample decides whether to trace the tuple identified by key, tagged with
// the owning eddy and the tuple's sequence number. It reports whether the
// tuple is now live-traced. Allocation happens only for the sampled
// fraction of tuples, capped by the configured rate.
//
//tcq:coldpath
func (tr *Tracer) Sample(key any, tag string, seq int64) bool {
	if tr == nil || tr.rate <= 0 {
		return false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.rate < 1 && tr.rng.Float64() >= tr.rate {
		return false
	}
	tr.live[key] = &Trace{Tag: tag, Seq: seq}
	return true
}

// Live reports whether key is being traced.
func (tr *Tracer) Live(key any) bool {
	if tr == nil {
		return false
	}
	tr.mu.Lock()
	_, ok := tr.live[key]
	tr.mu.Unlock()
	return ok
}

// Span records one timed module visit for a live-traced tuple (no-op
// otherwise). The histogram export happens even for keys that finished
// between Live and Span, so hop latencies never silently disappear.
// Callers gate on Live, so allocation is confined to sampled tuples.
//
//tcq:coldpath
func (tr *Tracer) Span(key any, module string, start, end time.Time, pass bool, produced int) {
	tr.mu.Lock()
	if t, ok := tr.live[key]; ok {
		t.Spans = append(t.Spans, Span{Module: module, Start: start, End: end, Pass: pass, Produced: produced})
	}
	h, cached := tr.hists[module]
	reg := tr.reg
	tr.mu.Unlock()
	if reg == nil {
		return
	}
	if !cached {
		// Resolve outside tr.mu: Registry.mu is ordered before Tracer.mu,
		// and Histogram is idempotent per name, so a racing first span for
		// the same module caches the same histogram.
		h = reg.Histogram(fmt.Sprintf("tcq_hop_latency_seconds{module=%q}", module), 1024)
		tr.mu.Lock()
		tr.hists[module] = h
		tr.mu.Unlock()
	}
	h.Record(end.Sub(start))
}

// Fork starts tracing child (a join output) with a copy of parent's path
// so far, so the output's trace shows its full derivation; the fork edge
// (parent Seq, inherited span count) is preserved on the child.
// Allocation is confined to sampled (live-traced) parents.
//
//tcq:coldpath
func (tr *Tracer) Fork(parent, child any) {
	tr.mu.Lock()
	if p, ok := tr.live[parent]; ok {
		tr.live[child] = &Trace{
			Tag:       p.Tag,
			Seq:       p.Seq,
			Spans:     append([]Span(nil), p.Spans...),
			Forked:    true,
			ForkOf:    p.Seq,
			ForkSpans: len(p.Spans),
		}
	}
	tr.mu.Unlock()
}

// Finish retires a live trace into the recent ring, touching the tag's
// LRU slot and evicting the least-recently-finished tag when the tag cap
// is exceeded. emitted records whether the tuple reached the query's
// output. Allocation is confined to sampled (live-traced) keys.
//
//tcq:coldpath
func (tr *Tracer) Finish(key any, emitted bool) {
	tr.mu.Lock()
	t, ok := tr.live[key]
	if !ok {
		tr.mu.Unlock()
		return
	}
	delete(tr.live, key)
	t.Emitted = emitted
	ring := append(tr.recent[t.Tag], t)
	if over := len(ring) - tr.keep; over > 0 {
		ring = append(ring[:0], ring[over:]...)
	}
	tr.recent[t.Tag] = ring
	tr.useSeq++
	tr.tagUse[t.Tag] = tr.useSeq
	for len(tr.recent) > tr.maxTags {
		tr.evictLRULocked()
	}
	sink := tr.sink
	tr.mu.Unlock()
	if sink != nil {
		sink(t)
	}
}

// evictLRULocked drops the tag with the oldest last-Finish stamp.
func (tr *Tracer) evictLRULocked() {
	var victim string
	var oldest int64 = 1<<63 - 1
	for tag := range tr.recent {
		if use := tr.tagUse[tag]; use < oldest {
			oldest = use
			victim = tag
		}
	}
	delete(tr.recent, victim)
	delete(tr.tagUse, victim)
}

// Tags returns the number of tags currently holding retained traces.
func (tr *Tracer) Tags() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.recent)
}

// Recent returns the finished traces for a tag, oldest first.
func (tr *Tracer) Recent(tag string) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*Trace(nil), tr.recent[tag]...)
}
