package metrics

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Hop is one module visit on a traced tuple's path through an eddy.
type Hop struct {
	Module   string
	Latency  time.Duration
	Pass     bool
	Produced int
}

// Trace is the recorded lineage of one sampled tuple: the module-visit
// path the eddy's routing policy chose for it, with per-hop latency.
// Join outputs forked from a traced tuple inherit its hops so far.
type Trace struct {
	Tag     string // owning eddy ("q<id>" or "shared:<stream>")
	Seq     int64  // arrival sequence number of the sampled tuple
	Hops    []Hop
	Emitted bool // reached the query's output (vs dropped/absorbed)
}

// String renders the trace as a single diagnostic line.
func (t *Trace) String() string {
	parts := make([]string, len(t.Hops))
	for i, h := range t.Hops {
		outcome := "drop"
		if h.Pass {
			outcome = "pass"
		}
		parts[i] = fmt.Sprintf("%s:%v:%s+%d", h.Module, h.Latency, outcome, h.Produced)
	}
	path := strings.Join(parts, " -> ")
	if path == "" {
		path = "(no visits)"
	}
	return fmt.Sprintf("seq=%d emitted=%v hops=%d path=%s", t.Seq, t.Emitted, len(t.Hops), path)
}

// Tracer samples tuples entering an eddy and records their routing path.
// Keys are opaque tuple identities (pointers); live entries move to a
// bounded per-tag ring when the tuple finishes, so memory stays constant
// regardless of stream volume. All methods are concurrent-safe.
type Tracer struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rate   float64
	keep   int
	live   map[any]*Trace
	recent map[string][]*Trace
}

// NewTracer samples at the given probability (clamped to [0,1]) with a
// deterministic seed, keeping the last keep finished traces per tag.
func NewTracer(rate float64, seed int64, keep int) *Tracer {
	if rate > 1 {
		rate = 1
	}
	if keep <= 0 {
		keep = 32
	}
	return &Tracer{
		rng:    rand.New(rand.NewSource(seed)),
		rate:   rate,
		keep:   keep,
		live:   make(map[any]*Trace),
		recent: make(map[string][]*Trace),
	}
}

// Rate returns the configured sample probability.
func (tr *Tracer) Rate() float64 { return tr.rate }

// Sample decides whether to trace the tuple identified by key, tagged with
// the owning eddy and the tuple's sequence number. It reports whether the
// tuple is now live-traced.
func (tr *Tracer) Sample(key any, tag string, seq int64) bool {
	if tr == nil || tr.rate <= 0 {
		return false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.rate < 1 && tr.rng.Float64() >= tr.rate {
		return false
	}
	tr.live[key] = &Trace{Tag: tag, Seq: seq}
	return true
}

// Live reports whether key is being traced.
func (tr *Tracer) Live(key any) bool {
	if tr == nil {
		return false
	}
	tr.mu.Lock()
	_, ok := tr.live[key]
	tr.mu.Unlock()
	return ok
}

// Hop records one module visit for a live-traced tuple (no-op otherwise).
func (tr *Tracer) Hop(key any, module string, d time.Duration, pass bool, produced int) {
	tr.mu.Lock()
	if t, ok := tr.live[key]; ok {
		t.Hops = append(t.Hops, Hop{Module: module, Latency: d, Pass: pass, Produced: produced})
	}
	tr.mu.Unlock()
}

// Fork starts tracing child (a join output) with a copy of parent's path
// so far, so the output's trace shows its full derivation.
func (tr *Tracer) Fork(parent, child any) {
	tr.mu.Lock()
	if p, ok := tr.live[parent]; ok {
		tr.live[child] = &Trace{
			Tag:  p.Tag,
			Seq:  p.Seq,
			Hops: append([]Hop(nil), p.Hops...),
		}
	}
	tr.mu.Unlock()
}

// Finish retires a live trace into the recent ring. emitted records
// whether the tuple reached the query's output.
func (tr *Tracer) Finish(key any, emitted bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.live[key]
	if !ok {
		return
	}
	delete(tr.live, key)
	t.Emitted = emitted
	ring := append(tr.recent[t.Tag], t)
	if over := len(ring) - tr.keep; over > 0 {
		ring = append(ring[:0], ring[over:]...)
	}
	tr.recent[t.Tag] = ring
}

// Recent returns the finished traces for a tag, oldest first.
func (tr *Tracer) Recent(tag string) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*Trace(nil), tr.recent[tag]...)
}
