package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tcq_test_total")
	c.Inc()
	if r.Counter("tcq_test_total") != c {
		t.Error("counter not memoized")
	}
	g := r.Gauge("tcq_depth")
	g.Set(3.5)
	if r.Gauge("tcq_depth").Value() != 3.5 {
		t.Error("gauge not memoized")
	}
	h := r.Histogram("tcq_lat_seconds", 64)
	h.Record(time.Millisecond)
	if r.Histogram("tcq_lat_seconds", 64) != h {
		t.Error("histogram not memoized")
	}
}

func TestRegistryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("tcq_shared_total").Inc()
				r.Counter(fmt.Sprintf(`tcq_per{worker="%d"}`, i)).Inc()
				r.Gauge("tcq_g").Set(float64(j))
				r.Histogram("tcq_h_seconds", 32).Record(time.Duration(j))
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}(i)
	}
	// Concurrent scraping while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			var buf bytes.Buffer
			r.WritePrometheus(&buf)
		}
	}()
	wg.Wait()
	if got := r.Counter("tcq_shared_total").Value(); got != 8*500 {
		t.Errorf("shared counter = %d, want %d", got, 8*500)
	}
}

func TestRegistryFuncMetricsAndUnregister(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.RegisterFunc(`tcq_fn{query="7"}`, KindCounter, func() float64 { v++; return float64(v) })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Name != `tcq_fn{query="7"}` || snap[0].Value != 42 {
		t.Fatalf("snapshot = %+v", snap)
	}
	r.Counter(`tcq_c{query="7"}`).Inc()
	r.Counter(`tcq_c{query="8"}`).Inc()
	if n := r.UnregisterMatching(`query="7"`); n != 2 {
		t.Errorf("removed %d, want 2", n)
	}
	snap = r.Snapshot()
	if len(snap) != 1 || snap[0].Name != `tcq_c{query="8"}` {
		t.Errorf("after unregister: %+v", snap)
	}
	r.Unregister(`tcq_c{query="8"}`)
	if len(r.Snapshot()) != 0 {
		t.Error("unregister by name failed")
	}
}

func TestPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter(`tcq_eddy_visits_total{query="1"}`).Add(5)
	r.Counter(`tcq_eddy_visits_total{query="2"}`).Add(7)
	r.Gauge("tcq_queue_depth").Set(3)
	r.Histogram("tcq_fire_seconds", 16).Record(10 * time.Millisecond)
	r.RegisterFunc("tcq_streams", KindGauge, func() float64 { return 2 })

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# TYPE tcq_eddy_visits_total counter\n",
		`tcq_eddy_visits_total{query="1"} 5` + "\n",
		`tcq_eddy_visits_total{query="2"} 7` + "\n",
		"# TYPE tcq_queue_depth gauge\n",
		"tcq_queue_depth 3\n",
		"# TYPE tcq_fire_seconds summary\n",
		`tcq_fire_seconds{quantile="0.5"} 0.01` + "\n",
		"tcq_fire_seconds_sum 0.01\n",
		"tcq_fire_seconds_count 1\n",
		"# TYPE tcq_streams gauge\n",
		"tcq_streams 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family, even with several series.
	if strings.Count(out, "# TYPE tcq_eddy_visits_total ") != 1 {
		t.Error("duplicate TYPE lines for one family")
	}
	// Families must be sorted.
	i1 := strings.Index(out, "# TYPE tcq_eddy_visits_total")
	i2 := strings.Index(out, "# TYPE tcq_queue_depth")
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Error("families not sorted")
	}
}

func TestHistogramSeededReservoirDeterministic(t *testing.T) {
	run := func() []time.Duration {
		h := NewHistogramSeeded(8, 42)
		for i := 0; i < 10000; i++ {
			h.Record(time.Duration(i))
		}
		return h.Snapshot().Samples
	}
	a, b := run(), run()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("reservoir sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-reproducible reservoir: %v vs %v", a, b)
		}
	}
	// A different seed should (overwhelmingly) retain a different set.
	h := NewHistogramSeeded(8, 7)
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(i))
	}
	c := h.Snapshot().Samples
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds retained identical reservoirs")
	}
}

func TestHistogramSnapshotLockFree(t *testing.T) {
	h := NewHistogram(100)
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Max != 100*time.Millisecond {
		t.Errorf("count=%d max=%v", s.Count, s.Max)
	}
	if m := s.Mean(); m < 50*time.Millisecond || m > 51*time.Millisecond {
		t.Errorf("mean = %v", m)
	}
	if q := s.Quantile(0.5); q < 45*time.Millisecond || q > 55*time.Millisecond {
		t.Errorf("p50 = %v", q)
	}
	// Snapshot is a copy: further records must not affect it.
	h.Record(time.Hour)
	if s.Max == time.Hour || s.Count != 100 {
		t.Error("snapshot aliases live histogram state")
	}
	// Samples are sorted for quantile reads.
	for i := 1; i < len(s.Samples); i++ {
		if s.Samples[i-1] > s.Samples[i] {
			t.Fatal("snapshot samples not sorted")
		}
	}
}

func TestTracer(t *testing.T) {
	tr := NewTracer(1.0, 1, 2)
	k1, k2, k3, k4 := new(int), new(int), new(int), new(int)
	if !tr.Sample(k1, "q1", 10) {
		t.Fatal("rate-1 tracer refused a sample")
	}
	if !tr.Live(k1) || tr.Live(k2) {
		t.Error("liveness wrong")
	}
	t0 := time.Unix(0, 0)
	tr.Span(k1, "sel0", t0, t0.Add(time.Microsecond), true, 0)
	tr.Span(k1, "SteM(s)", t0.Add(time.Microsecond), t0.Add(3*time.Microsecond), true, 1)
	tr.Fork(k1, k2)
	tr.Finish(k1, true)
	tr.Span(k2, "sel1", t0.Add(3*time.Microsecond), t0.Add(4*time.Microsecond), false, 0)
	tr.Finish(k2, false)

	got := tr.Recent("q1")
	if len(got) != 2 {
		t.Fatalf("recent = %d traces", len(got))
	}
	if len(got[0].Spans) != 2 || !got[0].Emitted {
		t.Errorf("first trace: %+v", got[0])
	}
	if got[0].Spans[1].Latency() != 2*time.Microsecond {
		t.Errorf("span latency = %v, want 2µs", got[0].Spans[1].Latency())
	}
	if got[0].Latency() != 3*time.Microsecond {
		t.Errorf("trace latency = %v, want 3µs (first enter to last exit)", got[0].Latency())
	}
	// Fork inherited the parent's two spans, then added its own; the fork
	// edge records the parent seq and inherited span count.
	if len(got[1].Spans) != 3 || got[1].Emitted {
		t.Errorf("forked trace: %+v", got[1])
	}
	if !got[1].Forked || got[1].ForkOf != 10 || got[1].ForkSpans != 2 {
		t.Errorf("fork edge: %+v", got[1])
	}
	if !strings.Contains(got[0].String(), "SteM(s)") {
		t.Errorf("trace string = %q", got[0].String())
	}

	// Ring keeps only the newest two per tag.
	tr.Sample(k3, "q1", 11)
	tr.Finish(k3, false)
	tr.Sample(k4, "q1", 12)
	tr.Finish(k4, true)
	got = tr.Recent("q1")
	if len(got) != 2 || got[0].Seq != 11 || got[1].Seq != 12 {
		t.Errorf("ring = %+v", got)
	}
	if tr.Recent("q9") != nil {
		t.Error("unknown tag returned traces")
	}
}

func TestTracerTagLRUChurn(t *testing.T) {
	tr := NewTracer(1.0, 1, 4)
	tr.SetMaxTags(8)
	// Churn through many more tags than the cap, touching q0 on every
	// round so recency keeps it resident.
	for i := 0; i < 100; i++ {
		k := new(int)
		tag := fmt.Sprintf("q%d", i)
		tr.Sample(k, tag, int64(i))
		tr.Finish(k, true)
		k0 := new(int)
		tr.Sample(k0, "q0", int64(i))
		tr.Finish(k0, false)
	}
	if got := tr.Tags(); got != 8 {
		t.Fatalf("tag count after churn = %d, want cap 8", got)
	}
	if tr.Recent("q0") == nil {
		t.Error("hot tag q0 evicted despite constant touches")
	}
	if tr.Recent("q1") != nil {
		t.Error("cold tag q1 survived 99 rounds of churn")
	}
	// Memory check: the retained traces are bounded by cap*keep.
	total := 0
	for i := 0; i < 100; i++ {
		total += len(tr.Recent(fmt.Sprintf("q%d", i)))
	}
	if total > 8*4 {
		t.Errorf("retained %d traces, want <= maxTags*keep = 32", total)
	}
}

func TestTracerSinkAndHistograms(t *testing.T) {
	tr := NewTracer(1.0, 1, 4)
	reg := NewRegistry()
	tr.ExportHistograms(reg)
	var sunk []*Trace
	tr.SetSink(func(trace *Trace) { sunk = append(sunk, trace) })

	k := new(int)
	tr.Sample(k, "q1", 1)
	t0 := time.Unix(0, 0)
	tr.Span(k, "SteM(s)", t0, t0.Add(time.Millisecond), true, 2)
	tr.Finish(k, true)

	if len(sunk) != 1 || sunk[0].Seq != 1 || !sunk[0].Emitted {
		t.Fatalf("sink saw %+v", sunk)
	}
	want := `tcq_hop_latency_seconds_count{module="SteM(s)"}`
	found := false
	for _, s := range reg.Snapshot() {
		if s.Name == want {
			found = true
			if s.Value != 1 {
				t.Fatalf("%s = %v, want 1", want, s.Value)
			}
		}
	}
	if !found {
		t.Fatalf("snapshot missing %s", want)
	}
}

func TestTracerDisabledAndSampling(t *testing.T) {
	var nilTr *Tracer
	if nilTr.Sample(new(int), "q", 1) || nilTr.Live(new(int)) || nilTr.Recent("q") != nil {
		t.Error("nil tracer must be inert")
	}
	off := NewTracer(0, 1, 4)
	if off.Sample(new(int), "q", 1) {
		t.Error("rate-0 tracer sampled")
	}
	// Rate 0.5 samples roughly half deterministically for a fixed seed.
	half := NewTracer(0.5, 99, 4096)
	n := 0
	for i := 0; i < 1000; i++ {
		k := new(int)
		if half.Sample(k, "q", int64(i)) {
			n++
			half.Finish(k, false)
		}
	}
	if n < 400 || n > 600 {
		t.Errorf("sampled %d/1000 at rate 0.5", n)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1.0, 1, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tag := fmt.Sprintf("q%d", w)
			for i := 0; i < 200; i++ {
				k := new(int)
				tr.Sample(k, tag, int64(i))
				t0 := time.Unix(0, int64(i))
				tr.Span(k, "m", t0, t0.Add(time.Nanosecond), true, 0)
				tr.Finish(k, i%2 == 0)
				tr.Recent(tag)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		if got := len(tr.Recent(fmt.Sprintf("q%d", w))); got != 8 {
			t.Errorf("tag q%d ring = %d", w, got)
		}
	}
}
