package metrics

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns an HTTP handler exposing the registry at /metrics in
// Prometheus text format, runtime profiling under /debug/pprof/, and a
// trivial /healthz. cmd/tcqd mounts this on its observability port.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
