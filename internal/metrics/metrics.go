// Package metrics provides the lightweight counters and latency recorders
// the benchmark harness uses to report experiment results. Everything is
// allocation-free on the hot path.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is an atomic event counter.
type Counter struct{ v int64 }

// Inc adds 1.
func (c *Counter) Inc() { atomic.AddInt64(&c.v, 1) }

// Add adds n.
func (c *Counter) Add(n int64) { atomic.AddInt64(&c.v, n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Reset zeroes the counter.
func (c *Counter) Reset() { atomic.StoreInt64(&c.v, 0) }

// Histogram records durations for quantile reporting. It keeps raw samples
// up to a cap, then reservoir-samples; good enough for benchmark summaries.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	count   int64
	sum     time.Duration
	max     time.Duration
	cap     int
}

// NewHistogram returns a histogram keeping at most capSamples samples.
func NewHistogram(capSamples int) *Histogram {
	if capSamples <= 0 {
		capSamples = 4096
	}
	return &Histogram{cap: capSamples}
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		return
	}
	// Deterministic reservoir: overwrite pseudo-randomly by count.
	i := int(h.count * 2654435761 % int64(h.cap))
	if i < 0 {
		i = -i
	}
	h.samples[i] = d
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the maximum observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), h.samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Throughput measures events per second over a wall-clock interval.
type Throughput struct {
	start  time.Time
	events Counter
}

// Start begins (or restarts) the measurement window.
func (t *Throughput) Start() { t.start = time.Now(); t.events.Reset() }

// Add records n events.
func (t *Throughput) Add(n int64) { t.events.Add(n) }

// Rate returns events/second since Start.
func (t *Throughput) Rate() float64 {
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.events.Value()) / el
}
