// Package metrics provides the engine's observability substrate: atomic
// counters and gauges, reservoir-sampled latency histograms, a named
// concurrent-safe Registry with Prometheus text export (registry.go), and
// a sampled tuple-lineage Tracer (trace.go). Everything is allocation-free
// on the hot path; exports pay their costs at scrape time.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/chaos"
)

// Counter is an atomic event counter.
type Counter struct{ v int64 }

// Inc adds 1.
func (c *Counter) Inc() { atomic.AddInt64(&c.v, 1) }

// Add adds n.
func (c *Counter) Add(n int64) { atomic.AddInt64(&c.v, n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Reset zeroes the counter.
func (c *Counter) Reset() { atomic.StoreInt64(&c.v, 0) }

// Gauge is an atomic instantaneous value.
type Gauge struct{ bits uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { atomic.StoreUint64(&g.bits, math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := atomic.LoadUint64(&g.bits)
		v := math.Float64frombits(old) + d
		if atomic.CompareAndSwapUint64(&g.bits, old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&g.bits)) }

// Histogram records durations for quantile reporting. It keeps raw samples
// up to a cap, then reservoir-samples (Algorithm R) with a deterministic
// seeded RNG injected at construction, so distributions past the cap are
// unbiased and reproducible.
type Histogram struct {
	mu      sync.Mutex
	rng     *rand.Rand
	samples []time.Duration
	count   int64
	sum     time.Duration
	max     time.Duration
	cap     int
}

// NewHistogram returns a histogram keeping at most capSamples samples,
// seeded deterministically (seed 1).
func NewHistogram(capSamples int) *Histogram {
	return NewHistogramSeeded(capSamples, 1)
}

// NewHistogramSeeded returns a histogram whose reservoir RNG is seeded with
// seed, making the retained sample set reproducible for a given input.
func NewHistogramSeeded(capSamples int, seed int64) *Histogram {
	if capSamples <= 0 {
		capSamples = 4096
	}
	return &Histogram{cap: capSamples, rng: rand.New(rand.NewSource(seed))}
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		return
	}
	// Algorithm R: keep the new observation with probability cap/count,
	// replacing a uniformly chosen retained sample.
	if i := h.rng.Int63n(h.count); i < int64(h.cap) {
		h.samples[i] = d
	}
}

// HistogramSnapshot is an immutable copy of a histogram's state. Readers
// work on the snapshot without further locking.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Max     time.Duration
	Samples []time.Duration // sorted ascending
}

// Snapshot copies the histogram's state under its lock; the returned value
// needs no locking to read.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	s := HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Max:     h.max,
		Samples: append([]time.Duration(nil), h.samples...),
	}
	h.mu.Unlock()
	sort.Slice(s.Samples, func(i, j int) bool { return s.Samples[i] < s.Samples[j] })
	return s
}

// Mean returns the snapshot's mean duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained samples.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if len(s.Samples) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(s.Samples)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s.Samples) {
		i = len(s.Samples) - 1
	}
	return s.Samples[i]
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the maximum observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Throughput measures events per second over a clock interval. The zero
// value measures against the wall clock; SetClock substitutes a virtual
// one for deterministic rate tests.
type Throughput struct {
	clock  chaos.Clock
	start  time.Time
	events Counter
}

// SetClock injects the clock the window is measured on. Call before
// Start.
func (t *Throughput) SetClock(clk chaos.Clock) { t.clock = clk }

func (t *Throughput) clk() chaos.Clock {
	if t.clock == nil {
		return chaos.Real()
	}
	return t.clock
}

// Start begins (or restarts) the measurement window.
func (t *Throughput) Start() { t.start = t.clk().Now(); t.events.Reset() }

// Add records n events.
func (t *Throughput) Add(n int64) { t.events.Add(n) }

// Rate returns events/second since Start.
func (t *Throughput) Rate() float64 {
	el := t.clk().Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.events.Value()) / el
}
