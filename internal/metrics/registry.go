package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind classifies a registered metric for export.
type Kind int

// Metric kinds, mapped onto Prometheus types: KindCounter -> counter,
// KindGauge -> gauge, histograms export as summaries.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return "untyped"
}

// funcMetric is a metric whose value is computed at scrape time, so
// subsystems that already keep counters (eddy stats, SteM stats, Flux)
// can be exported with zero hot-path cost.
type funcMetric struct {
	kind Kind
	fn   func() float64
}

// Registry is a concurrent-safe named metric collection. Metric names
// follow the Prometheus convention `family{label="value",...}`; series
// sharing a family are grouped under one TYPE declaration on export.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]funcMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]funcMetric),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the named histogram, seeded
// deterministically from the name so retained reservoirs are reproducible.
func (r *Registry) Histogram(name string, capSamples int) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	var seed int64 = 1
	for _, b := range name {
		seed = seed*131 + int64(b)
	}
	h = NewHistogramSeeded(capSamples, seed)
	r.hists[name] = h
	return h
}

// RegisterFunc installs a computed metric evaluated at scrape time. An
// existing metric of the same name is replaced.
func (r *Registry) RegisterFunc(name string, kind Kind, fn func() float64) {
	r.mu.Lock()
	r.funcs[name] = funcMetric{kind: kind, fn: fn}
	r.mu.Unlock()
}

// Unregister removes the named metric of any kind.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	delete(r.counters, name)
	delete(r.gauges, name)
	delete(r.hists, name)
	delete(r.funcs, name)
	r.mu.Unlock()
}

// UnregisterMatching removes every metric whose full name contains the
// given substring (e.g. `query="7"` drops all of query 7's series).
// It returns the number removed.
func (r *Registry) UnregisterMatching(sub string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name := range r.counters {
		if strings.Contains(name, sub) {
			delete(r.counters, name)
			n++
		}
	}
	for name := range r.gauges {
		if strings.Contains(name, sub) {
			delete(r.gauges, name)
			n++
		}
	}
	for name := range r.hists {
		if strings.Contains(name, sub) {
			delete(r.hists, name)
			n++
		}
	}
	for name := range r.funcs {
		if strings.Contains(name, sub) {
			delete(r.funcs, name)
			n++
		}
	}
	return n
}

// Sample is one exported series value.
type Sample struct {
	Name  string
	Value float64
}

// series is the internal scrape unit: funcs are evaluated after the
// registry lock is released so computed metrics may take their own locks.
type series struct {
	name string
	kind Kind
	val  float64
	fn   func() float64
	hist *Histogram
}

func (r *Registry) collect() []series {
	r.mu.RLock()
	out := make([]series, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for name, c := range r.counters {
		out = append(out, series{name: name, kind: KindCounter, val: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, series{name: name, kind: KindGauge, val: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, series{name: name, kind: KindHistogram, hist: h})
	}
	for name, f := range r.funcs {
		out = append(out, series{name: name, kind: f.kind, fn: f.fn})
	}
	r.mu.RUnlock()
	for i := range out {
		if out[i].fn != nil {
			out[i].val = out[i].fn()
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Snapshot returns every series value, sorted by name. Histograms expand
// into _count, _sum_seconds, _p50/_p99 and _max_seconds samples.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, s := range r.collect() {
		if s.hist == nil {
			out = append(out, Sample{Name: s.name, Value: s.val})
			continue
		}
		hs := s.hist.Snapshot()
		fam, labels := splitName(s.name)
		mk := func(suffix string) string { return joinName(fam+suffix, labels) }
		out = append(out,
			Sample{Name: mk("_count"), Value: float64(hs.Count)},
			Sample{Name: mk("_sum_seconds"), Value: hs.Sum.Seconds()},
			Sample{Name: mk("_p50_seconds"), Value: hs.Quantile(0.5).Seconds()},
			Sample{Name: mk("_p99_seconds"), Value: hs.Quantile(0.99).Seconds()},
			Sample{Name: mk("_max_seconds"), Value: hs.Max.Seconds()},
		)
	}
	return out
}

// splitName separates `family{labels}` into family and `labels` (without
// braces; empty when unlabelled).
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinName reassembles a family and label body into a series name.
func joinName(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

// withLabel appends one label to a series name.
func withLabel(name, label string) string {
	fam, labels := splitName(name)
	if labels == "" {
		return joinName(fam, label)
	}
	return joinName(fam, labels+","+label)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms export as summaries with quantile
// labels plus _sum (seconds) and _count series.
func (r *Registry) WritePrometheus(w io.Writer) {
	all := r.collect()
	// Group series by family so each family gets exactly one TYPE line.
	byFamily := make(map[string][]series)
	var families []string
	for _, s := range all {
		fam, _ := splitName(s.name)
		if _, seen := byFamily[fam]; !seen {
			families = append(families, fam)
		}
		byFamily[fam] = append(byFamily[fam], s)
	}
	sort.Strings(families)
	for _, fam := range families {
		group := byFamily[fam]
		fmt.Fprintf(w, "# TYPE %s %s\n", fam, group[0].kind)
		for _, s := range group {
			if s.hist == nil {
				fmt.Fprintf(w, "%s %s\n", s.name, formatValue(s.val))
				continue
			}
			hs := s.hist.Snapshot()
			for _, q := range []float64{0.5, 0.9, 0.99} {
				fmt.Fprintf(w, "%s %s\n",
					withLabel(s.name, fmt.Sprintf(`quantile="%g"`, q)),
					formatValue(hs.Quantile(q).Seconds()))
			}
			famOnly, labels := splitName(s.name)
			fmt.Fprintf(w, "%s %s\n", joinName(famOnly+"_sum", labels), formatValue(hs.Sum.Seconds()))
			fmt.Fprintf(w, "%s %s\n", joinName(famOnly+"_count", labels), formatValue(float64(hs.Count)))
		}
	}
}
