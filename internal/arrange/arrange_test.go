package arrange

import (
	"sync"
	"testing"

	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

func mk(ts int64, key int64) *tuple.Tuple {
	t := tuple.New(tuple.Int(key), tuple.Int(ts))
	t.TS = ts
	t.Seq = ts
	return t
}

func windowedOpts() Options {
	return Options{Name: "s", KeyCol: 0, Windowed: true, TimeKind: window.Physical}
}

func TestInsertLookupScan(t *testing.T) {
	a := New(windowedOpts())
	a.Insert([]*tuple.Tuple{mk(1, 10), mk(2, 20), mk(3, 10)})
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	var hits []int64
	a.Lookup(tuple.Int(10).Hash(), func(tt *tuple.Tuple) {
		hits = append(hits, tt.TS)
	})
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("Lookup(10) = %v, want [1 3]", hits)
	}
	var seen []int64
	a.Scan(func(tt *tuple.Tuple) { seen = append(seen, tt.TS) })
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("Scan = %v, want time order [1 2 3]", seen)
	}
}

func TestUnindexedLookupScansAll(t *testing.T) {
	a := New(Options{Name: "s", KeyCol: -1})
	a.Insert([]*tuple.Tuple{mk(1, 10), mk(2, 20)})
	n := 0
	a.Lookup(12345, func(*tuple.Tuple) { n++ })
	if n != 2 {
		t.Fatalf("unindexed Lookup visited %d, want 2 (scan)", n)
	}
}

// TestEvictDefersUntilCursorsPass is the heart of the epoch protocol: evicted
// tuples stay parked while any cursor sits at an older epoch and are freed
// exactly when the last laggard syncs past the eviction epoch.
func TestEvictDefersUntilCursorsPass(t *testing.T) {
	pool := tuple.NewPool()
	opts := windowedOpts()
	opts.Recycler = pool
	a := New(opts)
	c1 := a.NewCursor()
	c2 := a.NewCursor()

	a.Insert([]*tuple.Tuple{mk(1, 10), mk(2, 20), mk(3, 30)})
	if n := a.Evict(3); n != 2 {
		t.Fatalf("Evict(3) = %d, want 2", n)
	}
	st := a.Stats()
	if st.Size != 1 || st.Retired != 2 || st.ReclaimedTuples != 0 {
		t.Fatalf("after evict: size=%d retired=%d reclaimed=%d, want 1/2/0",
			st.Size, st.Retired, st.ReclaimedTuples)
	}
	// Lookups no longer see evicted tuples even though they are unreclaimed.
	n := 0
	a.Lookup(tuple.Int(10).Hash(), func(*tuple.Tuple) { n++ })
	if n != 0 {
		t.Fatalf("evicted tuple still visible to Lookup")
	}

	a.Advance() // seal the eviction epoch
	c1.Sync()
	if st := a.Stats(); st.Retired != 2 {
		t.Fatalf("retired freed with c2 still at epoch 0 (retired=%d)", st.Retired)
	}
	c2.Sync()
	st = a.Stats()
	if st.Retired != 0 || st.ReclaimedTuples != 2 || st.ReclaimedBytes <= 0 {
		t.Fatalf("after all cursors synced: retired=%d reclaimed=%d bytes=%d",
			st.Retired, st.ReclaimedTuples, st.ReclaimedBytes)
	}
	if got := pool.Stats().Puts; got != 2 {
		t.Fatalf("pool puts = %d, want 2 (reclaimed tuples recycled)", got)
	}
	if st.Lag != 0 {
		t.Fatalf("lag = %d after full sync, want 0", st.Lag)
	}
}

func TestCursorCloseReleasesRetired(t *testing.T) {
	a := New(windowedOpts())
	c := a.NewCursor()
	a.Insert([]*tuple.Tuple{mk(1, 10)})
	a.Evict(5)
	a.Advance()
	if st := a.Stats(); st.Retired != 1 {
		t.Fatalf("retired=%d, want 1 while cursor open", st.Retired)
	}
	c.Close()
	if st := a.Stats(); st.Retired != 0 {
		t.Fatalf("retired=%d after Close, want 0", st.Retired)
	}
}

func TestNoCursorsReclaimImmediatelyOnAdvance(t *testing.T) {
	a := New(windowedOpts())
	a.Insert([]*tuple.Tuple{mk(1, 10), mk(2, 20)})
	a.Evict(10)
	a.Advance()
	if st := a.Stats(); st.Retired != 0 || st.ReclaimedTuples != 2 {
		t.Fatalf("no-cursor reclaim: retired=%d reclaimed=%d, want 0/2",
			st.Retired, st.ReclaimedTuples)
	}
}

func TestHandleAttachCloseCountsReaders(t *testing.T) {
	a := New(windowedOpts())
	c := a.NewCursor()
	h1 := c.Attach()
	h2 := c.Attach()
	if st := a.Stats(); st.Readers != 2 || st.MaxReaders != 2 {
		t.Fatalf("readers=%d max=%d, want 2/2", st.Readers, st.MaxReaders)
	}
	h1.Close()
	h1.Close() // idempotent
	h2.Close()
	if st := a.Stats(); st.Readers != 0 || st.MaxReaders != 2 {
		t.Fatalf("readers=%d max=%d after close, want 0/2", st.Readers, st.MaxReaders)
	}
	a.Insert([]*tuple.Tuple{mk(1, 7)})
	n := 0
	h3 := c.Attach()
	h3.Probe(tuple.Int(7).Hash(), func(*tuple.Tuple) { n++ })
	h3.Scan(func(*tuple.Tuple) { n++ })
	if n != 2 {
		t.Fatalf("handle probe+scan visited %d, want 2", n)
	}
}

func TestScrubLineage(t *testing.T) {
	a := New(windowedOpts())
	t1 := mk(1, 10)
	t1.Queries.Set(3)
	t1.Queries.Set(70)
	a.Insert([]*tuple.Tuple{t1})
	var mask tuple.Bitset
	mask.Set(70)
	a.ScrubLineage(mask)
	if !t1.Queries.Test(3) || t1.Queries.Test(70) {
		t.Fatalf("scrub: bit3=%v bit70=%v, want true/false",
			t1.Queries.Test(3), t1.Queries.Test(70))
	}
	// A mask wider than a stored tuple's bitmap must not panic.
	short := mk(2, 11)
	a.Insert([]*tuple.Tuple{short})
	var wide tuple.Bitset
	wide.Set(200)
	a.ScrubLineage(wide)
}

// TestConcurrentReadersOneWriter exercises the single-writer/many-reader
// contract under the race detector: one goroutine inserts, evicts, and
// advances while readers probe through handles and sync their cursor.
func TestConcurrentReadersOneWriter(t *testing.T) {
	a := New(windowedOpts())
	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		c := a.NewCursor()
		h := c.Attach()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer h.Close()
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Probe(tuple.Int(1).Hash(), func(tt *tuple.Tuple) {
					_ = tt.TS
				})
				c.Sync()
				_ = a.Stats()
			}
		}()
	}
	for i := int64(0); i < 500; i++ {
		a.Insert([]*tuple.Tuple{mk(i, i%8)})
		if i%16 == 0 {
			a.Evict(i - 64)
		}
		a.Advance()
	}
	close(stop)
	wg.Wait()
	a.Advance()
	if st := a.Stats(); st.Retired != 0 {
		t.Fatalf("retired=%d after all cursors closed, want 0", st.Retired)
	}
}

func TestSlotsLifecycle(t *testing.T) {
	var s Slots
	a := s.Fresh()
	b := s.Fresh()
	c := s.Fresh()
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("fresh ids = %d,%d,%d, want 0,1,2", a, b, c)
	}
	if _, ok := s.Alloc(); ok {
		t.Fatalf("Alloc succeeded with empty free list")
	}
	s.Free(2)
	s.Free(0)
	if s.Cooling() != 2 {
		t.Fatalf("cooling=%d, want 2", s.Cooling())
	}
	if _, ok := s.Alloc(); ok {
		t.Fatalf("cooling slots must not be allocatable before Promote")
	}
	m := s.CoolingMask()
	if !m.Test(0) || m.Test(1) || !m.Test(2) {
		t.Fatalf("cooling mask wrong: %v", m)
	}
	s.Promote()
	// LIFO pop must yield the smallest cooled ID first, independent of the
	// order the queries were removed in.
	id, ok := s.Alloc()
	if !ok || id != 0 {
		t.Fatalf("first reuse = %d,%v, want 0,true", id, ok)
	}
	id, ok = s.Alloc()
	if !ok || id != 2 {
		t.Fatalf("second reuse = %d,%v, want 2,true", id, ok)
	}
	if s.High() != 3 {
		t.Fatalf("high water = %d, want 3", s.High())
	}
}

func TestRegistryKeysAndDrop(t *testing.T) {
	r := NewRegistry()
	k1 := Key{Class: "c1", Stream: "s", Shard: -1}
	a1 := r.GetOrCreate(k1, windowedOpts())
	if r.GetOrCreate(k1, windowedOpts()) != a1 {
		t.Fatalf("same key must return same arrangement")
	}
	k2 := Key{Class: "c1", Stream: "s", Shard: 0}
	k3 := Key{Class: "c2", Stream: "s", Shard: -1}
	r.GetOrCreate(k2, windowedOpts())
	a3 := r.GetOrCreate(k3, windowedOpts())
	if n, _, _, _ := r.Totals(); n != 3 {
		t.Fatalf("count=%d, want 3", n)
	}
	r.Drop("c1")
	n := 0
	r.Each(func(k Key, a *Arrangement) {
		n++
		if a != a3 {
			t.Fatalf("unexpected survivor %v", k)
		}
	})
	if n != 1 {
		t.Fatalf("after Drop: %d arrangements, want 1", n)
	}
}
