package arrange

import "sync"

// Key identifies an arrangement within a Registry: the shared-class key it
// belongs to, the stream whose tuples it stores, and the parallel shard
// that owns it (-1 for the sequential engine or a parallel front).
type Key struct {
	Class  string
	Stream string
	Shard  int
}

// Registry tracks every live arrangement in an engine so metrics and
// introspection can enumerate them. Creation is keyed: asking for the same
// Key twice returns the same arrangement.
type Registry struct {
	mu   sync.Mutex
	arrs map[Key]*Arrangement
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{arrs: make(map[Key]*Arrangement)}
}

// GetOrCreate returns the arrangement for k, creating it with opts on first
// use.
func (r *Registry) GetOrCreate(k Key, opts Options) *Arrangement {
	r.mu.Lock()
	defer r.mu.Unlock()
	if a, ok := r.arrs[k]; ok {
		return a
	}
	a := New(opts)
	r.arrs[k] = a
	return a
}

// Drop removes every arrangement registered under the given class key,
// called when its shared class closes.
func (r *Registry) Drop(class string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.arrs {
		if k.Class == class {
			delete(r.arrs, k)
		}
	}
}

// Each calls fn for every registered arrangement. The callback must not
// call back into the registry.
func (r *Registry) Each(fn func(Key, *Arrangement)) {
	r.mu.Lock()
	keys := make([]Key, 0, len(r.arrs))
	for k := range r.arrs {
		keys = append(keys, k)
	}
	arrs := make([]*Arrangement, len(keys))
	for i, k := range keys {
		arrs[i] = r.arrs[k]
	}
	r.mu.Unlock()
	for i, k := range keys {
		fn(k, arrs[i])
	}
}

// Totals aggregates stats across all registered arrangements: count,
// readers, maximum epoch lag, and reclaimed bytes — the engine-level
// tcq_arrangement_* metric values.
func (r *Registry) Totals() (count, readers int, maxLag uint64, reclaimedBytes int64) {
	r.Each(func(_ Key, a *Arrangement) {
		st := a.Stats()
		count++
		readers += st.Readers
		if st.Lag > maxLag {
			maxLag = st.Lag
		}
		reclaimedBytes += st.ReclaimedBytes
	})
	return
}
