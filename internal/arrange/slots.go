package arrange

import (
	"sort"

	"telegraphcq/internal/tuple"
)

// Slots allocates lineage-slot IDs for queries sharing an arrangement's
// bitmap space. Freed slots are not immediately reusable: stored tuples may
// still carry the dead query's lineage bit, so a freed slot first parks on
// a cooling list. Once the owner scrubs the cooling mask from all stored
// state (ScrubLineage), Promote moves the cooled slots to the free list and
// allocation reuses them — keeping the bitmap dense instead of growing
// monotonically with churn.
//
// Slots is not goroutine-safe; the owning engine serializes access under
// its control lock.
type Slots struct {
	next    int
	free    []int // scrubbed, ready to hand out (LIFO)
	cooling []int // freed but possibly still set in stored lineage
}

// Alloc pops a scrubbed slot, if any.
func (s *Slots) Alloc() (int, bool) {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		return id, true
	}
	return 0, false
}

// Fresh mints a never-used slot ID.
func (s *Slots) Fresh() int {
	id := s.next
	s.next++
	return id
}

// Free parks a slot on the cooling list; it becomes allocatable only after
// the next scrub+Promote.
func (s *Slots) Free(id int) { s.cooling = append(s.cooling, id) }

// Cooling reports how many freed slots await scrubbing.
func (s *Slots) Cooling() int { return len(s.cooling) }

// High returns the high-water slot count (IDs ever minted).
func (s *Slots) High() int { return s.next }

// CoolingMask builds the bitmap of all cooling slots — the mask the owner
// must clear from stored lineage before calling Promote.
func (s *Slots) CoolingMask() tuple.Bitset {
	var m tuple.Bitset
	for _, id := range s.cooling {
		m.Set(id)
	}
	return m
}

// Promote moves all cooling slots to the free list, sorted so that Alloc
// (LIFO) hands out the smallest ID first — deterministic regardless of the
// order queries were removed in.
func (s *Slots) Promote() {
	if len(s.cooling) == 0 {
		return
	}
	sort.Sort(sort.Reverse(sort.IntSlice(s.cooling)))
	s.free = append(s.free, s.cooling...)
	s.cooling = s.cooling[:0]
}
