// Package arrange implements shared arrangements (PAPERS.md, McSherry et
// al.): multi-reader index state built once and probed by many standing
// queries. An Arrangement is the storage half of a SteM — a hash index on
// the join column plus the time-ordered (or insertion-ordered) tuple store
// — owned by exactly ONE writer, the engine that builds it, and readable by
// any number of concurrent cursors.
//
// The writer applies inserts and window evictions in epoch batches: every
// mutation lands in the current epoch, and Advance seals it. Evicted tuples
// are not freed immediately — a reader holding a cursor at an older epoch
// may still be probing state that referenced them — but parked on a retired
// list tagged with the eviction epoch. Only when every open cursor has
// synced past that epoch are the tuples reclaimed (returned to the tuple
// pool). This is the classic epoch-based reclamation discipline: frees are
// deferred until all cursors pass.
//
// Registering the 10,000th query against an arrangement therefore costs one
// reader handle — an index entry — instead of a copy of the state: queries
// attach a Handle to a Cursor, probe the shared index through it, and
// detach on removal.
package arrange

import (
	"sync"

	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// Options configures an Arrangement.
type Options struct {
	// Name labels the arrangement (typically "<stream>" or
	// "<stream>.<col>") in stats and introspection rows.
	Name string
	// KeyCol is the wide-row column the hash index is built on; -1
	// disables indexing (Lookup degenerates to Scan).
	KeyCol int
	// Windowed orders stored tuples by the given notion of time and
	// enables Evict.
	Windowed bool
	TimeKind window.TimeKind
	// Recycler, when set, receives reclaimed tuples once every cursor has
	// passed their eviction epoch.
	Recycler *tuple.Pool
}

// retiredBatch is one eviction's worth of tuples awaiting reclamation,
// tagged with the epoch current when they were evicted.
type retiredBatch struct {
	epoch uint64
	ts    []*tuple.Tuple
}

// Arrangement is a shared, multi-reader tuple store with epoch-based
// reclamation. All methods are safe for concurrent use, under a
// single-writer discipline: exactly one goroutine calls the mutating
// methods (Insert, Evict, Advance, ScrubLineage), while any number
// concurrently call the reading methods (Lookup, Scan, Handle.Probe,
// Stats).
type Arrangement struct {
	opts Options

	mu    sync.RWMutex
	index map[uint64][]*tuple.Tuple
	all   *window.Buffer // when Windowed
	inseq []*tuple.Tuple // otherwise

	epoch   uint64
	retired []retiredBatch

	cursors    map[int]*Cursor
	nextCursor int
	readers    int // open handles across all cursors

	inserts    int64
	evicted    int64
	reclaimedN int64
	reclaimedB int64
	maxReaders int
}

// New creates an empty arrangement.
func New(opts Options) *Arrangement {
	a := &Arrangement{opts: opts, cursors: make(map[int]*Cursor)}
	if opts.KeyCol >= 0 {
		a.index = make(map[uint64][]*tuple.Tuple)
	}
	if opts.Windowed {
		a.all = window.NewBuffer(opts.TimeKind)
	}
	return a
}

// Name returns the arrangement's label.
func (a *Arrangement) Name() string { return a.opts.Name }

// Insert adds a batch of tuples to the current epoch. Writer-only.
func (a *Arrangement) Insert(ts []*tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inserts += int64(len(ts))
	if a.index != nil {
		for _, t := range ts {
			h := t.Vals[a.opts.KeyCol].Hash()
			a.index[h] = append(a.index[h], t)
		}
	}
	if a.all != nil {
		a.all.AddBatch(ts)
	} else {
		a.inseq = append(a.inseq, ts...)
	}
}

// Lookup calls emit for every stored tuple whose key column hashes to hash
// (every stored tuple when the arrangement is unindexed). Safe to call
// concurrently with other readers; emit must not retain candidates past the
// call (merge-copy matches instead).
func (a *Arrangement) Lookup(hash uint64, emit func(*tuple.Tuple)) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.index == nil {
		a.scanLocked(emit)
		return
	}
	for _, t := range a.index[hash] {
		emit(t)
	}
}

// Scan calls emit for every stored tuple in time/insertion order.
func (a *Arrangement) Scan(emit func(*tuple.Tuple)) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	a.scanLocked(emit)
}

func (a *Arrangement) scanLocked(emit func(*tuple.Tuple)) {
	if a.all != nil {
		for _, t := range a.all.Range(-1<<62, 1<<62) {
			emit(t)
		}
		return
	}
	for _, t := range a.inseq {
		emit(t)
	}
}

// Len returns the number of stored (live, non-retired) tuples.
func (a *Arrangement) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.all != nil {
		return a.all.Len()
	}
	return len(a.inseq)
}

// Evict removes stored tuples with window time strictly below watermark,
// parking them on the retired list of the current epoch; they are freed
// only once every open cursor has synced past it. Writer-only. Returns the
// number evicted. Only valid on windowed arrangements (no-op otherwise).
func (a *Arrangement) Evict(watermark int64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.all == nil {
		return 0
	}
	old := a.all.Range(-1<<62, watermark-1)
	if len(old) == 0 {
		return 0
	}
	parked := make([]*tuple.Tuple, len(old))
	copy(parked, old)
	n := a.all.Evict(watermark)
	a.evicted += int64(n)
	if a.index != nil {
		a.index = make(map[uint64][]*tuple.Tuple, a.all.Len())
		for _, t := range a.all.Range(-1<<62, 1<<62) {
			h := t.Vals[a.opts.KeyCol].Hash()
			a.index[h] = append(a.index[h], t)
		}
	}
	a.retired = append(a.retired, retiredBatch{epoch: a.epoch, ts: parked})
	a.reclaimLocked()
	return n
}

// Advance seals the current epoch: mutations so far belong to it, and
// subsequent ones land in the next. Writer-only; typically called once per
// engine step.
func (a *Arrangement) Advance() {
	a.mu.Lock()
	a.epoch++
	a.reclaimLocked()
	a.mu.Unlock()
}

// ScrubLineage clears the lineage bits in mask from every stored tuple —
// the deferred half of freeing a query's lineage slot: after its removal
// the slot may only be reused once no stored tuple still carries the dead
// query's bit. Writer-only.
func (a *Arrangement) ScrubLineage(mask tuple.Bitset) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.scanLocked(func(t *tuple.Tuple) {
		for i := range mask {
			if i < len(t.Queries) {
				t.Queries[i] &^= mask[i]
			}
		}
	})
}

// reclaimLocked frees retired batches every open cursor has passed. With no
// open cursors everything retired is reclaimable.
func (a *Arrangement) reclaimLocked() {
	if len(a.retired) == 0 {
		return
	}
	min := a.epoch
	for _, c := range a.cursors {
		if c.at < min {
			min = c.at
		}
	}
	kept := a.retired[:0]
	for _, rb := range a.retired {
		if rb.epoch >= min {
			kept = append(kept, rb)
			continue
		}
		for _, t := range rb.ts {
			a.reclaimedN++
			a.reclaimedB += tupleBytes(t)
			if a.opts.Recycler != nil {
				a.opts.Recycler.Put(t)
			}
		}
	}
	// Clear the tail so freed batches become collectable.
	for i := len(kept); i < len(a.retired); i++ {
		a.retired[i] = retiredBatch{}
	}
	a.retired = kept
}

// tupleBytes estimates a tuple's resident size: the struct, its value
// slice, and its lineage bitmap. An estimate is enough — the metric tracks
// reclamation volume, not exact heap accounting.
func tupleBytes(t *tuple.Tuple) int64 {
	const structBytes = 96
	return structBytes + 24*int64(len(t.Vals)) + 8*int64(len(t.Queries))
}

// Cursor tracks one reader group's progress through the arrangement's
// epochs. A cursor at epoch E has observed every mutation sealed before E;
// retired batches of epochs >= E stay un-freed while it is open. Queries
// sharing an execution engine share one cursor (the engine advances it once
// per step for all of them); each query still holds its own Handle.
type Cursor struct {
	a  *Arrangement
	id int
	at uint64
}

// NewCursor opens a cursor at the current epoch.
func (a *Arrangement) NewCursor() *Cursor {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := &Cursor{a: a, id: a.nextCursor, at: a.epoch}
	a.nextCursor++
	a.cursors[c.id] = c
	return c
}

// Sync advances the cursor to the current epoch and reclaims any retired
// batches every cursor has now passed.
func (c *Cursor) Sync() {
	a := c.a
	a.mu.Lock()
	c.at = a.epoch
	a.reclaimLocked()
	a.mu.Unlock()
}

// Close removes the cursor; its handles must already be closed. Retired
// state it was holding back becomes reclaimable.
func (c *Cursor) Close() {
	a := c.a
	a.mu.Lock()
	delete(a.cursors, c.id)
	a.reclaimLocked()
	a.mu.Unlock()
}

// Attach registers one reader on the cursor and returns its handle. This is
// what a standing query costs: an entry in the reader count, not a copy of
// the state.
func (c *Cursor) Attach() *Handle {
	a := c.a
	a.mu.Lock()
	a.readers++
	if a.readers > a.maxReaders {
		a.maxReaders = a.readers
	}
	a.mu.Unlock()
	return &Handle{c: c}
}

// Handle is one reader's registration: a lightweight capability to probe
// the shared state through its cursor.
type Handle struct {
	c      *Cursor
	closed bool
}

// Probe looks up candidates by key hash through the handle's cursor.
func (h *Handle) Probe(hash uint64, emit func(*tuple.Tuple)) {
	h.c.a.Lookup(hash, emit)
}

// Scan visits all stored tuples through the handle's cursor.
func (h *Handle) Scan(emit func(*tuple.Tuple)) { h.c.a.Scan(emit) }

// Close detaches the reader. Idempotent.
func (h *Handle) Close() {
	if h.closed {
		return
	}
	h.closed = true
	a := h.c.a
	a.mu.Lock()
	a.readers--
	a.mu.Unlock()
}

// Stats is a point-in-time snapshot of arrangement state and reclamation
// counters.
type Stats struct {
	Epoch     uint64
	MinCursor uint64 // oldest open cursor's epoch (== Epoch when none)
	Lag       uint64 // Epoch - MinCursor
	Readers   int    // open handles
	Cursors   int    // open cursors
	Size      int    // live stored tuples
	Retired   int    // evicted tuples awaiting reclamation

	Inserts         int64
	Evicted         int64
	ReclaimedTuples int64
	ReclaimedBytes  int64
	MaxReaders      int
}

// Stats returns a snapshot.
func (a *Arrangement) Stats() Stats {
	a.mu.RLock()
	defer a.mu.RUnlock()
	st := Stats{
		Epoch:           a.epoch,
		MinCursor:       a.epoch,
		Readers:         a.readers,
		Cursors:         len(a.cursors),
		Inserts:         a.inserts,
		Evicted:         a.evicted,
		ReclaimedTuples: a.reclaimedN,
		ReclaimedBytes:  a.reclaimedB,
		MaxReaders:      a.maxReaders,
	}
	if a.all != nil {
		st.Size = a.all.Len()
	} else {
		st.Size = len(a.inseq)
	}
	for _, c := range a.cursors {
		if c.at < st.MinCursor {
			st.MinCursor = c.at
		}
	}
	st.Lag = st.Epoch - st.MinCursor
	for _, rb := range a.retired {
		st.Retired += len(rb.ts)
	}
	return st
}
