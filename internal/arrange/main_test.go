package arrange

import (
	"testing"

	"telegraphcq/internal/leakcheck"
)

// TestMain fails the package if any test leaves arrangement goroutines —
// maintenance loops, subscriber pumps — running after it finishes.
func TestMain(m *testing.M) { leakcheck.Main(m) }
