package arrange

import (
	"sync"

	"telegraphcq/internal/tuple"
)

// colSegRows is the row capacity of one ColumnStore segment. Large enough
// that segment-header allocation amortizes to nothing per row, small
// enough that a segment stays cache-friendly to scan.
const colSegRows = 1024

// RowRef addresses one stored row: segment index plus row index within
// the segment. Refs are stable forever — segments are append-only and
// never compacted — so probe candidates can be verified without copying.
type RowRef struct {
	Seg int32
	Row int32
}

// ColumnStore is the columnar counterpart of Arrangement: wide rows
// stored struct-of-arrays in a chain of Block segments, with a hash index
// on the key column mapping to RowRefs instead of tuple pointers. It is
// the storage half of a columnar SteM and the natural substrate for
// future columnar arrangements (ROADMAP item 5's archive shares the same
// segment layout).
//
// The same single-writer discipline as Arrangement applies: one goroutine
// appends, any number read. Rows are never mutated after append, so
// readers verify join predicates directly against segment columns with no
// copy and no per-candidate closure call.
type ColumnStore struct {
	name   string
	width  int
	keyCol int
	arena  *tuple.Arena

	mu    sync.RWMutex
	segs  []*tuple.Block
	index map[uint64][]RowRef
	rows  int

	inserts int64
}

// NewColumnStore creates an empty store of the given wide-row width,
// indexed on keyCol. Segments are carved from arena (required).
func NewColumnStore(name string, width, keyCol int, arena *tuple.Arena) *ColumnStore {
	return &ColumnStore{
		name:   name,
		width:  width,
		keyCol: keyCol,
		arena:  arena,
		index:  make(map[uint64][]RowRef),
	}
}

// Name returns the store's label.
func (s *ColumnStore) Name() string { return s.name }

// Len returns the number of stored rows.
func (s *ColumnStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rows
}

// Inserts returns the lifetime insert count.
func (s *ColumnStore) Inserts() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inserts
}

// tailLocked returns the open segment, growing the chain as needed.
//
//tcq:hotpath
func (s *ColumnStore) tailLocked() *tuple.Block {
	if n := len(s.segs); n > 0 && !s.segs[n-1].Full() {
		return s.segs[n-1]
	}
	seg := s.arena.Get(s.width, colSegRows)
	s.segs = append(s.segs, seg)
	return seg
}

// AppendFrom copies the selected rows of b into the store in one pass —
// survivor selection by mask, column-contiguous writes, one index entry
// per row. Writer-only.
//
//tcq:hotpath
func (s *ColumnStore) AppendFrom(b *tuple.Block, sel *tuple.Mask) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := b.Col(s.keyCol)
	for i := 0; i < b.Len(); i++ {
		if !sel.Test(i) {
			continue
		}
		seg := s.tailLocked()
		si := int32(len(s.segs) - 1)
		row := int32(seg.AppendRowFrom(b, i))
		h := key[i].Hash()
		//lint:ignore alloccheck hash-index insert: amortized O(1) bucket growth per stored row, pinned below the E17 allocs/tuple gate
		s.index[h] = append(s.index[h], RowRef{Seg: si, Row: row})
		s.rows++
		s.inserts++
	}
}

// Candidates returns the refs whose key column hashes to hash. The
// returned slice is an immutable snapshot: the writer only ever appends
// to a fresh slice header, and referenced rows are never rewritten, so
// readers may verify against it after the lock is dropped.
//
//tcq:hotpath
func (s *ColumnStore) Candidates(hash uint64) []RowRef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.index[hash]
}

// Seg returns segment i for candidate verification.
func (s *ColumnStore) Seg(i int32) *tuple.Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.segs[i]
}

// Segments calls fn over every segment in insertion order (scan path).
//
//tcq:hotpath
func (s *ColumnStore) Segments(fn func(*tuple.Block)) {
	s.mu.RLock()
	segs := s.segs
	s.mu.RUnlock()
	for _, seg := range segs {
		fn(seg)
	}
}

// Release returns every segment to the arena. The store must not be used
// afterwards.
func (s *ColumnStore) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, seg := range s.segs {
		seg.Release()
		s.segs[i] = nil
	}
	s.segs = nil
	s.index = nil
	s.rows = 0
}
