package arrange

import (
	"fmt"
	"testing"

	"telegraphcq/internal/tuple"
)

// fillBlock builds a width-2 input block of n rows: col0 = key (i % keys),
// col1 = payload i.
func fillBlock(t *testing.T, arena *tuple.Arena, n, keys int) *tuple.Block {
	t.Helper()
	b := arena.Get(2, n)
	for i := 0; i < n; i++ {
		b.AppendRow([]tuple.Value{tuple.Int(int64(i % keys)), tuple.Int(int64(i))}, int64(i), int64(i), 1)
	}
	return b
}

func TestColumnStoreAppendProbe(t *testing.T) {
	arena := tuple.NewArena()
	s := NewColumnStore("cs", 2, 0, arena)
	if s.Name() != "cs" {
		t.Fatalf("Name = %q, want cs", s.Name())
	}
	if s.Len() != 0 || s.Inserts() != 0 {
		t.Fatalf("empty store: Len=%d Inserts=%d", s.Len(), s.Inserts())
	}

	const rows, keys = 300, 7
	in := fillBlock(t, arena, rows, keys)
	defer in.Release()

	// Keep only even payloads.
	var sel tuple.Mask
	sel.Reset(rows)
	kept := 0
	for i := 0; i < rows; i += 2 {
		sel.Set(i)
		kept++
	}
	s.AppendFrom(in, &sel)
	if s.Len() != kept {
		t.Fatalf("Len = %d, want %d", s.Len(), kept)
	}
	if s.Inserts() != int64(kept) {
		t.Fatalf("Inserts = %d, want %d", s.Inserts(), kept)
	}

	// Every key's candidate list verifies back to exactly the survivors
	// carrying that key, reachable through Seg.
	for k := 0; k < keys; k++ {
		kv := tuple.Int(int64(k))
		want := map[string]bool{}
		for i := 0; i < rows; i += 2 {
			if i%keys == k {
				want[fmt.Sprint(int64(i))] = true
			}
		}
		got := map[string]bool{}
		for _, ref := range s.Candidates(kv.Hash()) {
			seg := s.Seg(ref.Seg)
			if !tuple.Equal(seg.Col(0)[ref.Row], kv) {
				// Hash collision with another key: verification filters it.
				continue
			}
			got[fmt.Sprint(seg.Col(1)[ref.Row])] = true
		}
		if len(got) != len(want) {
			t.Fatalf("key %d: candidates %v, want %v", k, got, want)
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("key %d: missing payload %s", k, p)
			}
		}
	}

	if s.Candidates(tuple.Int(99999).Hash()) != nil && len(s.Candidates(tuple.Int(99999).Hash())) != 0 {
		t.Fatalf("absent key returned candidates")
	}

	// Scan path sees every survivor exactly once.
	scanned := 0
	s.Segments(func(b *tuple.Block) { scanned += b.Len() })
	if scanned != kept {
		t.Fatalf("Segments scanned %d rows, want %d", scanned, kept)
	}

	s.Release()
	if s.Len() != 0 {
		t.Fatalf("Len after Release = %d, want 0", s.Len())
	}
}

// TestColumnStoreSegmentGrowth appends past one segment's capacity and
// checks refs stay stable across the segment boundary.
func TestColumnStoreSegmentGrowth(t *testing.T) {
	arena := tuple.NewArena()
	s := NewColumnStore("grow", 2, 0, arena)
	defer s.Release()

	const total = colSegRows + colSegRows/2 // forces a second segment
	const key = 5
	var sel tuple.Mask
	// Feed in chunks so AppendFrom crosses the segment boundary mid-call.
	fed := 0
	for fed < total {
		n := 400
		if total-fed < n {
			n = total - fed
		}
		in := arena.Get(2, n)
		for i := 0; i < n; i++ {
			in.AppendRow([]tuple.Value{tuple.Int(key), tuple.Int(int64(fed + i))}, 0, 0, 1)
		}
		sel.ResetSet(n)
		s.AppendFrom(in, &sel)
		in.Release()
		fed += n
	}
	if s.Len() != total {
		t.Fatalf("Len = %d, want %d", s.Len(), total)
	}

	refs := s.Candidates(tuple.Int(key).Hash())
	if len(refs) != total {
		t.Fatalf("candidates = %d, want %d", len(refs), total)
	}
	seenSeg := map[int32]bool{}
	for i, ref := range refs {
		seenSeg[ref.Seg] = true
		seg := s.Seg(ref.Seg)
		if got := seg.Col(1)[ref.Row]; !tuple.Equal(got, tuple.Int(int64(i))) {
			t.Fatalf("ref %d resolves to payload %v", i, got)
		}
	}
	if len(seenSeg) < 2 {
		t.Fatalf("expected rows across >= 2 segments, got %d", len(seenSeg))
	}
}

func TestArrangementName(t *testing.T) {
	a := New(Options{Name: "orders", KeyCol: 0})
	if a.Name() != "orders" {
		t.Fatalf("Name = %q, want orders", a.Name())
	}
}
