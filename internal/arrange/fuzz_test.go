package arrange

import (
	"testing"

	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// FuzzCursorEpoch drives the arrangement's cursor/epoch protocol with an
// arbitrary interleaving of operations decoded from the fuzz input (one op
// per byte: insert, evict, advance, open/sync/close cursors, attach/close
// handles, scrub) and checks the reclamation invariants after every step:
//
//   - a retired batch survives iff some open cursor has not passed its epoch
//     (Stats().Retired counts exactly the held-back tuples);
//   - reclamation never runs ahead of eviction (reclaimed <= evicted) and
//     never loses tuples (inserts == live + retired + reclaimed);
//   - cursor lag is always Epoch - min(open cursor epochs) and zero when no
//     cursors are open after an Advance.
func FuzzCursorEpoch(f *testing.F) {
	f.Add([]byte{0, 0, 3, 1, 2, 4, 3, 5})          // insert/evict/advance/sync
	f.Add([]byte{3, 3, 0, 1, 5, 0, 2, 4, 4})       // cursors opened before data
	f.Add([]byte{0, 6, 1, 2, 7, 0, 8, 3, 4, 5})    // handles + scrub in the mix
	f.Add([]byte{0, 1, 1, 1, 2, 2, 2})             // repeated evict/advance, no cursor
	f.Add([]byte{3, 0, 2, 1, 2, 5, 3, 0, 1, 2, 4}) // close then reopen

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		a := New(Options{Name: "fuzz", KeyCol: 0, Windowed: true, TimeKind: window.Physical})
		var (
			cursors []*Cursor
			handles []*Handle
			now     int64
		)
		check := func(step int) {
			st := a.Stats()
			if st.ReclaimedTuples > st.Evicted {
				t.Fatalf("step %d: reclaimed %d > evicted %d", step, st.ReclaimedTuples, st.Evicted)
			}
			if got := int64(st.Size) + int64(st.Retired) + st.ReclaimedTuples; got != st.Inserts {
				t.Fatalf("step %d: live %d + retired %d + reclaimed %d != inserted %d",
					step, st.Size, st.Retired, st.ReclaimedTuples, st.Inserts)
			}
			if st.Lag != st.Epoch-st.MinCursor {
				t.Fatalf("step %d: lag %d != epoch %d - min %d", step, st.Lag, st.Epoch, st.MinCursor)
			}
			// Retired state must be exactly what the slowest cursor pins: with
			// no open cursor, one reclaim pass (Advance) must clear it.
			if len(cursors) == 0 && st.Lag != 0 {
				t.Fatalf("step %d: lag %d with no cursors", step, st.Lag)
			}
		}
		for i, op := range ops {
			switch op % 9 {
			case 0: // insert a small batch
				b := []*tuple.Tuple{mk(now, now%4), mk(now+1, (now+1)%4)}
				now += 2
				a.Insert(b)
			case 1: // evict a sliding window
				a.Evict(now - 8)
			case 2:
				a.Advance()
			case 3:
				cursors = append(cursors, a.NewCursor())
			case 4: // sync the oldest cursor
				if len(cursors) > 0 {
					cursors[0].Sync()
				}
			case 5: // close the oldest cursor
				if len(cursors) > 0 {
					cursors[0].Close()
					cursors = cursors[1:]
				}
			case 6: // attach a handle to the newest cursor
				if len(cursors) > 0 {
					handles = append(handles, cursors[len(cursors)-1].Attach())
				}
			case 7: // probe + close a handle
				if len(handles) > 0 {
					h := handles[len(handles)-1]
					handles = handles[:len(handles)-1]
					h.Probe(tuple.Int(now%4).Hash(), func(*tuple.Tuple) {})
					h.Close()
				}
			case 8:
				var m tuple.Bitset
				m.Set(int(op))
				a.ScrubLineage(m)
			}
			check(i)
		}
		// Drain: close everything and verify full reclamation.
		for _, h := range handles {
			h.Close()
		}
		for _, c := range cursors {
			c.Close()
		}
		cursors = nil
		a.Advance()
		check(len(ops))
		if st := a.Stats(); st.Retired != 0 {
			t.Fatalf("final: retired %d after closing all cursors", st.Retired)
		}
	})
}
