package gfilter

import (
	"math/rand"
	"testing"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

func TestSingleFactorClasses(t *testing.T) {
	g := New(0, tuple.SingleSource(0))
	g.Add(0, expr.Predicate{Col: 0, Op: expr.Gt, Val: tuple.Int(10)})
	g.Add(1, expr.Predicate{Col: 0, Op: expr.Ge, Val: tuple.Int(10)})
	g.Add(2, expr.Predicate{Col: 0, Op: expr.Lt, Val: tuple.Int(10)})
	g.Add(3, expr.Predicate{Col: 0, Op: expr.Le, Val: tuple.Int(10)})
	g.Add(4, expr.Predicate{Col: 0, Op: expr.Eq, Val: tuple.Int(10)})
	g.Add(5, expr.Predicate{Col: 0, Op: expr.Ne, Val: tuple.Int(10)})

	check := func(v int64, wantPass ...int) {
		t.Helper()
		failing := g.Failing(tuple.Int(v))
		pass := map[int]bool{}
		for _, q := range wantPass {
			pass[q] = true
		}
		for q := 0; q <= 5; q++ {
			if failing.Test(q) == pass[q] {
				t.Errorf("v=%d query %d: failing=%v, want pass=%v",
					v, q, failing.Test(q), pass[q])
			}
		}
	}
	check(9, 2, 3, 5)  // > and >= fail; <, <=, <> pass; = fails
	check(10, 1, 3, 4) // >= , <=, = pass
	check(11, 0, 1, 5) // >, >=, <> pass
}

func TestMultiFactorRangeQuery(t *testing.T) {
	// Query 0: 5 < x < 15 — two factors on the same attribute; both must
	// hold, and a failure of either clears the bit.
	g := New(0, tuple.SingleSource(0))
	g.Add(0, expr.Predicate{Col: 0, Op: expr.Gt, Val: tuple.Int(5)})
	g.Add(0, expr.Predicate{Col: 0, Op: expr.Lt, Val: tuple.Int(15)})
	for v, pass := range map[int64]bool{4: false, 5: false, 6: true, 14: true, 15: false} {
		if got := !g.Failing(tuple.Int(v)).Test(0); got != pass {
			t.Errorf("v=%d pass=%v, want %v", v, got, pass)
		}
	}
}

func TestApplyClearsLineage(t *testing.T) {
	g := New(0, tuple.SingleSource(0))
	g.Add(0, expr.Predicate{Col: 0, Op: expr.Gt, Val: tuple.Int(50)})
	g.Add(1, expr.Predicate{Col: 0, Op: expr.Le, Val: tuple.Int(50)})
	tp := tuple.New(tuple.Int(60))
	tp.Queries = tuple.NewBitset(2)
	tp.Queries.SetAll(2)
	if !g.Apply(tp) {
		t.Fatal("no query survived")
	}
	if !tp.Queries.Test(0) || tp.Queries.Test(1) {
		t.Errorf("lineage = %v", tp.Queries)
	}
}

func TestRemoveQuery(t *testing.T) {
	g := New(0, tuple.SingleSource(0))
	g.Add(0, expr.Predicate{Col: 0, Op: expr.Gt, Val: tuple.Int(10)})
	g.Add(1, expr.Predicate{Col: 0, Op: expr.Eq, Val: tuple.Int(3)})
	g.Remove(0)
	if g.Registered().Test(0) {
		t.Error("query 0 still registered")
	}
	if g.Len() != 1 {
		t.Errorf("len = %d", g.Len())
	}
	// Query 0's factor must no longer fail anything.
	if g.Failing(tuple.Int(5)).Test(0) {
		t.Error("removed query still fails tuples")
	}
}

func TestStringFactors(t *testing.T) {
	g := New(0, tuple.SingleSource(0))
	g.Add(0, expr.Predicate{Col: 0, Op: expr.Eq, Val: tuple.String_("MSFT")})
	g.Add(1, expr.Predicate{Col: 0, Op: expr.Ne, Val: tuple.String_("MSFT")})
	g.Add(2, expr.Predicate{Col: 0, Op: expr.Lt, Val: tuple.String_("N")})
	f := g.Failing(tuple.String_("MSFT"))
	if f.Test(0) || !f.Test(1) || f.Test(2) {
		t.Errorf("failing for MSFT = %v", f)
	}
	f = g.Failing(tuple.String_("ORCL"))
	if !f.Test(0) || f.Test(1) || !f.Test(2) {
		t.Errorf("failing for ORCL = %v", f)
	}
}

// TestEquivalenceWithNaive is the load-bearing property test: for random
// factor sets and random values, the grouped filter must agree exactly with
// per-query naive evaluation.
func TestEquivalenceWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ops := []expr.Op{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge}
	for trial := 0; trial < 50; trial++ {
		g := New(0, tuple.SingleSource(0))
		const nq = 40
		preds := make([][]expr.Predicate, nq)
		for q := 0; q < nq; q++ {
			nf := 1 + rng.Intn(3)
			for f := 0; f < nf; f++ {
				p := expr.Predicate{
					Col: 0,
					Op:  ops[rng.Intn(len(ops))],
					Val: tuple.Int(int64(rng.Intn(20))),
				}
				preds[q] = append(preds[q], p)
				g.Add(q, p)
			}
		}
		for v := int64(-1); v <= 21; v++ {
			tp := tuple.New(tuple.Int(v))
			failing := g.Failing(tuple.Int(v))
			for q := 0; q < nq; q++ {
				naive := true
				for _, p := range preds[q] {
					if !p.Eval(tp) {
						naive = false
						break
					}
				}
				if got := !failing.Test(q); got != naive {
					t.Fatalf("trial %d v=%d q=%d (%v): grouped=%v naive=%v",
						trial, v, q, preds[q], got, naive)
				}
			}
		}
	}
}

func TestModuleInterface(t *testing.T) {
	l := tuple.NewLayout(tuple.NewSchema("S",
		tuple.Column{Name: "x", Kind: tuple.KindInt}))
	g := New(0, tuple.SingleSource(0))
	g.Add(0, expr.Predicate{Col: 0, Op: expr.Gt, Val: tuple.Int(5)})
	m := NewModule("gf", g)
	if m.Name() != "gf" {
		t.Error("name")
	}
	if !m.AppliesTo(tuple.SingleSource(0)) || m.AppliesTo(tuple.SingleSource(1)) {
		t.Error("AppliesTo")
	}
	tp := l.Widen(0, tuple.New(tuple.Int(3)))
	tp.Queries = tuple.NewBitset(1)
	tp.Queries.Set(0)
	if _, pass := m.Process(tp); pass {
		t.Error("tuple failing all queries passed")
	}
}

func TestMixedAddRemoveRebuild(t *testing.T) {
	g := New(0, tuple.SingleSource(0))
	g.Add(0, expr.Predicate{Col: 0, Op: expr.Gt, Val: tuple.Int(5)})
	_ = g.Failing(tuple.Int(6)) // force rebuild
	g.Add(1, expr.Predicate{Col: 0, Op: expr.Gt, Val: tuple.Int(7)})
	f := g.Failing(tuple.Int(6))
	if f.Test(0) || !f.Test(1) {
		t.Errorf("failing after incremental add = %v", f)
	}
	g.Remove(1)
	f = g.Failing(tuple.Int(6))
	if f.Test(1) {
		t.Error("failing set contains removed query")
	}
}
