// Package gfilter implements grouped filters (§3.1, [MSHR02]): a shared
// index over the single-variable boolean factors of many continuous
// queries, all on the same attribute. One pass of a tuple through the
// grouped filter decides, for every registered query, whether that query's
// factors on this attribute hold — clearing the corresponding bits of the
// tuple's lineage bitmap. The per-tuple cost is O(log Q + Q/64) rather
// than O(Q), which is what makes processing thousands of standing queries
// feasible (experiment E9).
//
// Internally the filter keeps four sub-indexes, one per comparison class:
//
//   - greater-than factors, sorted by bound with suffix-union bitsets (a
//     tuple value v FAILS "col > c" iff v <= c — a suffix of the order);
//   - less-than factors, sorted by bound with prefix-union bitsets;
//   - equality factors, hashed by constant (all fail except the matching
//     bucket);
//   - inequality factors, hashed by constant (only the bucket fails).
//
// The failing sets from each sub-index are unioned and cleared from the
// tuple's lineage, which handles queries with several factors on the same
// attribute (e.g. range predicates) for free: any failing factor kills the
// query's bit.
package gfilter

import (
	"sort"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// bound is one ordered factor: a constant plus strictness. For a
// greater-than factor "col > c" strict is true; "col >= c" strict is false.
type bound struct {
	val    tuple.Value
	strict bool
	query  int
}

// GroupedFilter indexes the factors of many queries over one attribute
// (one wide-row column). It is not safe for concurrent use.
type GroupedFilter struct {
	col  int
	owns tuple.SourceSet

	gt      []bound // ascending by (val, strict): suffix fails
	lt      []bound // ascending by (val, !strict): prefix fails
	eq      map[uint64][]bound
	ne      map[uint64][]bound
	eqCount map[int]int // query -> number of equality factors

	// Suffix/prefix unions are kept only at chunk boundaries: a full
	// per-index union table costs O(factors · queries/64) memory, which at
	// 100k factors is gigabytes. With boundary unions every chunkSize
	// factors (chunk grows with the index so there are at most ~65
	// boundaries), Failing pays O(chunk) individual Set calls to cover the
	// partial chunk — O(F/64) time for O(Q) memory.
	gtChunk  int
	gtSuffix []tuple.Bitset // gtSuffix[k] = union of queries in gt[k*gtChunk:]
	ltChunk  int
	ltPrefix []tuple.Bitset // ltPrefix[k] = union of queries in lt[:k*ltChunk]
	eqAll    tuple.Bitset   // all queries with equality factors

	registered tuple.Bitset // every query with >= 1 factor here
	maxQuery   int
	dirty      bool

	// scratch bitsets reused per tuple to avoid allocation in the hot path.
	failing tuple.Bitset
	eqFail  tuple.Bitset
	// eqMatched is the multi-factor equality scratch map, lazily built on
	// the first probe that needs it and cleared per use.
	eqMatched map[int]int
}

// New creates a grouped filter over wide-row column col; owns is the
// source-set bit of the stream owning that column (for eddy routing).
func New(col int, owns tuple.SourceSet) *GroupedFilter {
	return &GroupedFilter{
		col:     col,
		owns:    owns,
		eq:      map[uint64][]bound{},
		ne:      map[uint64][]bound{},
		eqCount: map[int]int{},
	}
}

// Col returns the indexed wide-row column.
func (g *GroupedFilter) Col() int { return g.col }

// Add registers one factor of query q. The predicate's column must equal
// the filter's column.
func (g *GroupedFilter) Add(q int, p expr.Predicate) {
	if p.Col != g.col {
		panic("gfilter: predicate column mismatch")
	}
	if q > g.maxQuery {
		g.maxQuery = q
	}
	g.registered.Set(q)
	switch p.Op {
	case expr.Gt:
		g.gt = append(g.gt, bound{val: p.Val, strict: true, query: q})
	case expr.Ge:
		g.gt = append(g.gt, bound{val: p.Val, strict: false, query: q})
	case expr.Lt:
		g.lt = append(g.lt, bound{val: p.Val, strict: true, query: q})
	case expr.Le:
		g.lt = append(g.lt, bound{val: p.Val, strict: false, query: q})
	case expr.Eq:
		h := p.Val.Hash()
		g.eq[h] = append(g.eq[h], bound{val: p.Val, query: q})
		g.eqCount[q]++
	case expr.Ne:
		h := p.Val.Hash()
		g.ne[h] = append(g.ne[h], bound{val: p.Val, query: q})
	}
	g.dirty = true
}

// Remove unregisters every factor of query q (used as queries leave the
// system; §1.1 requires shared processing robust to query removal).
func (g *GroupedFilter) Remove(q int) {
	g.registered.Clear(q)
	g.gt = removeQuery(g.gt, q)
	g.lt = removeQuery(g.lt, q)
	for h, bs := range g.eq {
		if nb := removeQuery(bs, q); len(nb) == 0 {
			delete(g.eq, h)
		} else {
			g.eq[h] = nb
		}
	}
	delete(g.eqCount, q)
	for h, bs := range g.ne {
		if nb := removeQuery(bs, q); len(nb) == 0 {
			delete(g.ne, h)
		} else {
			g.ne[h] = nb
		}
	}
	g.dirty = true
}

func removeQuery(bs []bound, q int) []bound {
	out := bs[:0]
	for _, b := range bs {
		if b.query != q {
			out = append(out, b)
		}
	}
	return out
}

// chunkSize picks the union-boundary spacing for an ordered sub-index of n
// factors: at least 64, growing with n so the boundary count stays ~64 and
// union memory stays O(queries) rather than O(factors · queries).
func chunkSize(n int) int {
	c := (n + 63) / 64
	if c < 64 {
		c = 64
	}
	return c
}

// rebuild sorts the ordered sub-indexes and recomputes the boundary-union
// bitsets. Amortized over many tuples per registration change: it runs
// once per Add/Remove, never per probe, so its allocations are off the
// per-tuple budget.
//
//tcq:coldpath
func (g *GroupedFilter) rebuild() {
	words := g.maxQuery/64 + 1

	// gt: ascending by value; at equal values, non-strict (>=) first so
	// that the fail boundary "v < c || (v == c && strict)" is a clean
	// suffix: at v == c, ">= c" holds (early) while "> c" fails (late).
	sort.SliceStable(g.gt, func(i, j int) bool {
		c := tuple.Compare(g.gt[i].val, g.gt[j].val)
		if c != 0 {
			return c < 0
		}
		return !g.gt[i].strict && g.gt[j].strict
	})
	g.gtChunk = chunkSize(len(g.gt))
	nk := (len(g.gt) + g.gtChunk - 1) / g.gtChunk
	g.gtSuffix = make([]tuple.Bitset, nk+1)
	g.gtSuffix[nk] = make(tuple.Bitset, words)
	for k := nk - 1; k >= 0; k-- {
		bs := g.gtSuffix[k+1].Clone()
		hi := (k + 1) * g.gtChunk
		if hi > len(g.gt) {
			hi = len(g.gt)
		}
		for i := k * g.gtChunk; i < hi; i++ {
			bs.Set(g.gt[i].query)
		}
		g.gtSuffix[k] = bs
	}

	// lt: ascending by value; at equal values, strict (<) first so the
	// fail condition "v > c || (v == c && strict)" is a clean prefix.
	sort.SliceStable(g.lt, func(i, j int) bool {
		c := tuple.Compare(g.lt[i].val, g.lt[j].val)
		if c != 0 {
			return c < 0
		}
		return g.lt[i].strict && !g.lt[j].strict
	})
	g.ltChunk = chunkSize(len(g.lt))
	nk = (len(g.lt) + g.ltChunk - 1) / g.ltChunk
	g.ltPrefix = make([]tuple.Bitset, nk+1)
	g.ltPrefix[0] = make(tuple.Bitset, words)
	for k := 1; k <= nk; k++ {
		bs := g.ltPrefix[k-1].Clone()
		hi := k * g.ltChunk
		if hi > len(g.lt) {
			hi = len(g.lt)
		}
		for i := (k - 1) * g.ltChunk; i < hi; i++ {
			bs.Set(g.lt[i].query)
		}
		g.ltPrefix[k] = bs
	}

	g.eqAll = make(tuple.Bitset, words)
	for _, bs := range g.eq {
		for _, b := range bs {
			g.eqAll.Set(b.query)
		}
	}
	g.dirty = false
}

// Failing computes the set of registered queries whose factors on this
// attribute FAIL for value v. The returned bitset is reused across calls.
func (g *GroupedFilter) Failing(v tuple.Value) tuple.Bitset {
	if g.dirty {
		g.rebuild()
	}
	words := g.maxQuery/64 + 1
	if len(g.failing) < words {
		//lint:ignore alloccheck result-bitset grow: once per registered-query high-water mark, not per probe
		g.failing = make(tuple.Bitset, words)
	}
	f := g.failing[:words]
	for i := range f {
		f[i] = 0
	}

	// Greater-than: fails iff v < c || (v == c && strict). First index
	// where that holds begins the failing suffix: union from the next
	// chunk boundary, then the stragglers up to it individually.
	i := sort.Search(len(g.gt), func(i int) bool {
		c := tuple.Compare(v, g.gt[i].val)
		return c < 0 || (c == 0 && g.gt[i].strict)
	})
	k := (i + g.gtChunk - 1) / g.gtChunk
	f.Or(g.gtSuffix[k])
	hi := k * g.gtChunk
	if hi > len(g.gt) {
		hi = len(g.gt)
	}
	for idx := i; idx < hi; idx++ {
		f.Set(g.gt[idx].query)
	}

	// Less-than: fails iff v > c || (v == c && strict). The failing
	// prefix ends at the first index where the factor HOLDS: union up to
	// the last chunk boundary before it, stragglers individually.
	j := sort.Search(len(g.lt), func(i int) bool {
		c := tuple.Compare(v, g.lt[i].val)
		return !(c > 0 || (c == 0 && g.lt[i].strict))
	})
	k = j / g.ltChunk
	f.Or(g.ltPrefix[k])
	for idx := k * g.ltChunk; idx < j; idx++ {
		f.Set(g.lt[idx].query)
	}

	// Equality: every eq query fails except those whose constant is v.
	// Failures are computed in a separate scratch set so that clearing a
	// matching equality factor cannot erase a failure recorded by another
	// sub-index for the same query (e.g. "x = 1 AND x > 1" at v = 1).
	if g.eqAll.Any() {
		if len(g.eqFail) < words {
			//lint:ignore alloccheck equality-scratch grow: once per registered-query high-water mark, not per probe
			g.eqFail = make(tuple.Bitset, words)
		}
		ef := g.eqFail[:words]
		copy(ef, g.eqAll[:words])
		// A query's equality factors are all satisfied only when every
		// one of them matched v (a query with "x = 4 AND x = 10" never
		// passes). The common single-factor case avoids the map; the
		// multi-factor case reuses one scratch map across probes.
		matched := g.eqMatched
		clear(matched)
		bucket := g.eq[v.Hash()]
		for _, b := range bucket {
			if !tuple.Equal(b.val, v) {
				continue
			}
			if g.eqCount[b.query] == 1 {
				ef.Clear(b.query)
				continue
			}
			if matched == nil {
				//lint:ignore alloccheck lazy multi-factor scratch map: first multi-factor probe only, reused for the filter's lifetime
				matched = make(map[int]int, len(bucket))
				g.eqMatched = matched
			}
			//lint:ignore alloccheck scratch-map insert: bucket growth bounded by the multi-factor query high-water mark
			matched[b.query]++
		}
		for q, n := range matched {
			if n == g.eqCount[q] {
				ef.Clear(q)
			}
		}
		f.Or(ef)
	}

	// Inequality: only the matching bucket fails.
	for _, b := range g.ne[v.Hash()] {
		if tuple.Equal(b.val, v) {
			f.Set(b.query)
		}
	}
	return f
}

// Apply evaluates the filter on tuple t, clearing the lineage bits of every
// query whose factors fail. It returns whether any query remains live.
func (g *GroupedFilter) Apply(t *tuple.Tuple) bool {
	failing := g.Failing(t.Vals[g.col])
	for i := range failing {
		if i < len(t.Queries) {
			t.Queries[i] &^= failing[i]
		}
	}
	return t.Queries.Any()
}

// Registered returns a copy of the set of queries with factors here.
func (g *GroupedFilter) Registered() tuple.Bitset { return g.registered.Clone() }

// Len returns the total number of registered factors.
func (g *GroupedFilter) Len() int {
	n := len(g.gt) + len(g.lt)
	for _, bs := range g.eq {
		n += len(bs)
	}
	for _, bs := range g.ne {
		n += len(bs)
	}
	return n
}

// Module adapts a GroupedFilter to the eddy.Module interface for shared
// (CACQ-mode) execution.
type Module struct {
	*GroupedFilter
	name string

	// mask is the reused selection bitmap for the batch partition.
	mask tuple.Mask

	// Sampled probe timing (SetProbeTimer): every probeEvery-th batch or
	// tuple pass through the shared index is clocked into an EWMA, so
	// introspection sees grouped-filter probe latency without per-tuple
	// clock reads.
	probeClk   chaos.Clock
	probeEvery int64
	probeCalls int64
	probeNanos int64
}

// NewModule wraps g as an eddy module.
func NewModule(name string, g *GroupedFilter) *Module { return &Module{GroupedFilter: g, name: name} }

// Name implements eddy.Module.
func (m *Module) Name() string { return m.name }

// SetProbeTimer enables sampled filter-pass latency measurement on clk
// (nil disables); every < 1 defaults to 64 calls between samples.
func (m *Module) SetProbeTimer(clk chaos.Clock, every int) {
	if every < 1 {
		every = 64
	}
	m.probeClk = clk
	m.probeEvery = int64(every)
}

// ProbeNanos returns the sampled filter-pass latency EWMA per tuple (0
// until a sample lands).
func (m *Module) ProbeNanos() int64 { return m.probeNanos }

// probeStart reports whether this pass — covering n tuples — is sampled.
// The counter advances by tuple count so batched passes sample at the
// same rate as single ones.
func (m *Module) probeStart(n int) (time.Time, bool) {
	if m.probeClk == nil || n < 1 {
		return time.Time{}, false
	}
	before := m.probeCalls
	m.probeCalls += int64(n)
	if before/m.probeEvery == m.probeCalls/m.probeEvery {
		return time.Time{}, false
	}
	return m.probeClk.Now(), true
}

func (m *Module) probeEnd(start time.Time, tuples int) {
	if tuples < 1 {
		tuples = 1
	}
	lat := m.probeClk.Since(start).Nanoseconds() / int64(tuples)
	if m.probeNanos == 0 {
		m.probeNanos = lat
	} else {
		m.probeNanos = (7*m.probeNanos + lat) / 8
	}
}

// AppliesTo implements eddy.Module: an empty filter (no registered
// factors) applies to nothing, so idle columns cost no routing visits.
func (m *Module) AppliesTo(src tuple.SourceSet) bool {
	return m.registered.Any() && src.Contains(m.owns)
}

// Process implements eddy.Module: lineage bits of failing queries are
// cleared; the tuple dies once no query wants it.
func (m *Module) Process(t *tuple.Tuple) ([]*tuple.Tuple, bool) {
	if start, sampled := m.probeStart(1); sampled {
		defer m.probeEnd(start, 1)
	}
	return nil, m.Apply(t)
}

// ProcessBatch implements eddy.BatchModule: the whole batch runs against
// the shared sub-indexes in one pass (any pending rebuild is paid once),
// survivors stably partitioned to the front.
//
//tcq:hotpath
func (m *Module) ProcessBatch(b *tuple.Batch) ([]*tuple.Tuple, int) {
	if m.dirty {
		m.rebuild()
	}
	ts := b.Tuples
	if start, sampled := m.probeStart(len(ts)); sampled {
		defer m.probeEnd(start, len(ts))
	}
	m.mask.Reset(len(ts))
	for i, t := range ts {
		if m.Apply(t) {
			m.mask.Set(i)
		}
	}
	return nil, b.PartitionByMask(&m.mask)
}
