// Package cluster implements the paper's §4.3 roadmap item "Cluster and
// Distributed Implementations": the shared CQ engine scaled across a
// simulated shared-nothing cluster by Flux. Every node hosts a full
// replica of the standing-query set (a cacq.Engine); input tuples are
// hash-partitioned on a declared column, so each node evaluates the whole
// query set over its partition and the union of node outputs equals
// single-node execution. Join queries require the partition column to be
// the join key (the classic co-partitioning requirement); Flux's online
// repartitioning then moves bucket state between nodes mid-stream.
//
// Fault-tolerance scope: with Replicate on, selection results are
// exactly-once across failures (selections are stateless, so a promoted
// standby continues identically). Join queries keep producing after a
// failover, but matches that would have paired new tuples with the dead
// node's historical build state are not re-created — promoting shadow
// join state into the primary engine is future work, as is per-bucket
// segregation of SteM state for join migration.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/cacq"
	"telegraphcq/internal/eddy"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/flux"
	"telegraphcq/internal/tuple"
)

// Config parameterizes a parallel CQ engine.
type Config struct {
	// Nodes and Buckets configure the Flux cluster.
	Nodes   int
	Buckets int
	// Layout is the shared query layout (same on every node).
	Layout *tuple.Layout
	// PartitionCol is the wide-row column tuples are hash-partitioned
	// on. For join workloads it must be the join key of every shared
	// JoinSpec, or matches would land on different nodes.
	PartitionCol int
	// Joins are the shared equijoin edges (see cacq.JoinSpec).
	Joins []cacq.JoinSpec
	// Replicate enables Flux process-pair replication. Replicated
	// standby applications are suppressed from output, so results stay
	// exactly-once while state survives failures.
	Replicate bool
	// Output receives every delivered (queryID, tuple) pair; it must be
	// goroutine-safe. Nil collects counts only.
	Output func(queryID int, t *tuple.Tuple)
}

// ParallelCQ is a Flux-partitioned shared CQ engine.
type ParallelCQ struct {
	cfg  Config
	fx   *flux.Flux
	mu   sync.Mutex
	defs []queryDef // applied to every node engine, in order

	// keyFor maps stream index -> base-coordinate partition-key column
	// (-1 when the stream carries no partitionable column). The stream
	// owning PartitionCol uses it directly; streams joined to it through
	// an equijoin edge hash their side of the edge, so matching tuples
	// co-locate.
	keyFor []int

	delivered []atomic.Int64 // per query id
}

type queryDef struct {
	footprint  tuple.SourceSet
	selections []expr.Predicate
	project    []int
}

// cqNode hosts one node's engine replica. Primary applications run in
// eng; standby (process-pair) applications run in shadow with output
// suppressed, so results stay exactly-once while the shadow keeps warm
// state for failover of stateless (selection-only) workloads.
type cqNode struct {
	p             *ParallelCQ
	eng           *cacq.Engine
	shadow        *cacq.Engine
	applied       int // defs applied to eng
	appliedShadow int // defs applied to shadow
}

// nodeSeq hands out distinct policy seeds across cluster nodes (and across
// repeated clusters in one process), so node eddies adapt independently.
var nodeSeq atomic.Int64

// New starts the cluster.
func New(cfg Config) (*ParallelCQ, error) {
	if cfg.Layout == nil {
		return nil, fmt.Errorf("cluster: nil layout")
	}
	if cfg.PartitionCol < 0 || cfg.PartitionCol >= cfg.Layout.Width() {
		return nil, fmt.Errorf("cluster: partition column %d out of range", cfg.PartitionCol)
	}
	for _, j := range cfg.Joins {
		if j.ColA != cfg.PartitionCol && j.ColB != cfg.PartitionCol {
			return nil, fmt.Errorf(
				"cluster: join %d–%d is not co-partitioned with column %d: matches would split across nodes",
				j.ColA, j.ColB, cfg.PartitionCol)
		}
	}
	if err := eddy.CheckModuleCount(cacq.ModuleCount(cfg.Layout, cfg.Joins)); err != nil {
		return nil, err
	}
	p := &ParallelCQ{cfg: cfg}
	p.keyFor = make([]int, cfg.Layout.Streams())
	for s := range p.keyFor {
		p.keyFor[s] = -1
	}
	owner := cfg.Layout.Owner(cfg.PartitionCol)
	p.keyFor[owner] = cfg.PartitionCol - cfg.Layout.Offsets[owner]
	for _, j := range cfg.Joins {
		if j.ColA == cfg.PartitionCol {
			sb := cfg.Layout.Owner(j.ColB)
			p.keyFor[sb] = j.ColB - cfg.Layout.Offsets[sb]
		}
		if j.ColB == cfg.PartitionCol {
			sa := cfg.Layout.Owner(j.ColA)
			p.keyFor[sa] = j.ColA - cfg.Layout.Offsets[sa]
		}
	}
	p.fx = flux.New(flux.Config{
		Nodes:     cfg.Nodes,
		Buckets:   cfg.Buckets,
		KeyCol:    0, // routed tuples are rewrapped with the key first
		Replicate: cfg.Replicate,
	}, func() flux.Consumer {
		// Per-node seeds: each node's eddy (and its shadow replica) adapts
		// independently instead of every node sharing one hard-coded seed.
		// Odd/even split keeps primary and shadow lotteries distinct.
		seed := nodeSeq.Add(1) * 2
		eng, err := cacq.New(cfg.Layout, cfg.Joins, eddy.NewLotteryPolicy(seed))
		if err != nil {
			panic(err) // unreachable: validated before flux.New below
		}
		n := &cqNode{p: p, eng: eng}
		if cfg.Replicate {
			shadow, err := cacq.New(cfg.Layout, cfg.Joins, eddy.NewLotteryPolicy(seed+1))
			if err != nil {
				panic(err)
			}
			n.shadow = shadow
		}
		return n
	})
	return p, nil
}

// AddQuery registers a standing query on every node replica. Queries must
// be added before data flows or between quiesced batches (the paper's
// dynamic folding happens inside each node's engine; replicating the
// definition itself is a control-plane step here).
func (p *ParallelCQ) AddQuery(footprint tuple.SourceSet, selections []expr.Predicate, project []int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := len(p.defs)
	p.defs = append(p.defs, queryDef{footprint: footprint, selections: selections, project: project})
	p.delivered = append(p.delivered, atomic.Int64{})
	return id, nil
}

// syncQueries applies any new definitions to one engine. It runs inside
// the node's serial Apply path, so no locking beyond the defs read.
func (n *cqNode) syncQueries(eng *cacq.Engine, applied *int, emit bool) {
	n.p.mu.Lock()
	defs := n.p.defs[*applied:]
	base := *applied
	n.p.mu.Unlock()
	for i, d := range defs {
		id := base + i
		var out func(*tuple.Tuple)
		if emit {
			out = func(t *tuple.Tuple) {
				n.p.delivered[id].Add(1)
				if n.p.cfg.Output != nil {
					n.p.cfg.Output(id, t)
				}
			}
		}
		q, err := eng.AddQuery(d.footprint, d.selections, d.project, out)
		if err != nil {
			panic(fmt.Sprintf("cluster: replicating query %d: %v", id, err))
		}
		if q.ID != id {
			panic(fmt.Sprintf("cluster: node query id drift: %d != %d", q.ID, id))
		}
		*applied++
	}
}

// routeEnvelope is the wire format through Flux: the partition key value
// first (Flux hashes column 0), then stream index and the base values.
func envelope(stream int, key tuple.Value, base *tuple.Tuple) *tuple.Tuple {
	t := tuple.New(append([]tuple.Value{key, tuple.Int(int64(stream))}, base.Vals...)...)
	t.TS = base.TS
	t.Seq = base.Seq
	return t
}

// Apply implements flux.Consumer.
func (n *cqNode) Apply(_ int, t *tuple.Tuple) []*tuple.Tuple {
	n.syncQueries(n.eng, &n.applied, true)
	stream, base := unwrap(t)
	n.eng.Ingest(stream, base)
	return nil
}

// ApplyReplica implements flux.ReplicaAware: standby copies feed the
// shadow engine whose output is suppressed.
func (n *cqNode) ApplyReplica(_ int, t *tuple.Tuple) {
	if n.shadow == nil {
		return
	}
	n.syncQueries(n.shadow, &n.appliedShadow, false)
	stream, base := unwrap(t)
	n.shadow.Ingest(stream, base)
}

func unwrap(t *tuple.Tuple) (int, *tuple.Tuple) {
	stream := int(t.Vals[1].AsInt())
	base := tuple.New(t.Vals[2:]...)
	base.TS = t.TS
	base.Seq = t.Seq
	return stream, base
}

// ExtractState implements flux.Consumer. Join state is not yet
// bucket-segregated, so migration is only supported for selection-only
// workloads (which carry no per-bucket state).
func (n *cqNode) ExtractState(int) []*tuple.Tuple {
	if len(n.p.cfg.Joins) > 0 {
		panic("cluster: bucket migration with join state is not supported")
	}
	return nil
}

// InstallState implements flux.Consumer.
func (n *cqNode) InstallState(int, []*tuple.Tuple) {}

// BucketSize implements flux.Consumer.
func (n *cqNode) BucketSize(int) int { return 0 }

// Ingest partitions one base tuple of the given stream across the
// cluster, hashing the stream's partition-key column (the declared column
// for its owner stream; the matching join column for co-partitioned
// streams).
func (p *ParallelCQ) Ingest(stream int, base *tuple.Tuple) error {
	if stream < 0 || stream >= len(p.keyFor) {
		return fmt.Errorf("cluster: stream index %d out of range", stream)
	}
	keyIdx := p.keyFor[stream]
	if keyIdx < 0 {
		return fmt.Errorf("cluster: stream %d has no partition key (not joined to column %d)",
			stream, p.cfg.PartitionCol)
	}
	if keyIdx >= len(base.Vals) {
		return fmt.Errorf("cluster: tuple arity %d lacks key column %d", len(base.Vals), keyIdx)
	}
	p.fx.Route(envelope(stream, base.Vals[keyIdx], base))
	return nil
}

// WaitIdle blocks until the cluster has drained.
func (p *ParallelCQ) WaitIdle(timeout time.Duration) bool { return p.fx.WaitIdle(timeout) }

// Delivered returns the number of results delivered for a query across
// all nodes.
func (p *ParallelCQ) Delivered(queryID int) int64 {
	if queryID < 0 || queryID >= len(p.delivered) {
		return 0
	}
	return p.delivered[queryID].Load()
}

// Rebalance triggers Flux's online repartitioning (selection-only
// workloads; join state migration is rejected by the consumer).
func (p *ParallelCQ) Rebalance(factor float64) int { return p.fx.Rebalance(factor) }

// Fail kills a node; with replication on, its buckets fail over.
func (p *ParallelCQ) Fail(node int) { p.fx.Fail(node) }

// Flux exposes the underlying exchange (stats, loads).
func (p *ParallelCQ) Flux() *flux.Flux { return p.fx }

// Close shuts the cluster down.
func (p *ParallelCQ) Close() { p.fx.Close() }
