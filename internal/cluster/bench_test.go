package cluster

import (
	"fmt"
	"testing"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// BenchmarkParallelIngest measures partitioned shared-CQ throughput as the
// simulated cluster grows (the §4.3 scale-out claim, ablated by node
// count and replication).
func BenchmarkParallelIngest(b *testing.B) {
	for _, nodes := range []int{1, 2, 4} {
		for _, repl := range []bool{false, true} {
			name := fmt.Sprintf("nodes%d/replicate=%v", nodes, repl)
			b.Run(name, func(b *testing.B) {
				l := selLayout()
				p, err := New(Config{
					Nodes: nodes, Buckets: nodes * 16,
					Layout: l, PartitionCol: 0, Replicate: repl,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer p.Close()
				for q := 0; q < 50; q++ {
					p.AddQuery(1, []expr.Predicate{
						{Col: 1, Op: expr.Ge, Val: tuple.Int(int64(q))},
						{Col: 1, Op: expr.Le, Val: tuple.Int(int64(q + 10))},
					}, nil)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Ingest(0, mk(int64(i%1000), int64(i%100)))
				}
				b.StopTimer()
				p.WaitIdle(30 * time.Second)
			})
		}
	}
}
