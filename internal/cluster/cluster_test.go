package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"telegraphcq/internal/baseline"
	"telegraphcq/internal/cacq"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

func selLayout() *tuple.Layout {
	return tuple.NewLayout(tuple.NewSchema("s",
		tuple.Column{Name: "key", Kind: tuple.KindInt},
		tuple.Column{Name: "val", Kind: tuple.KindInt}))
}

func joinLayout() *tuple.Layout {
	return tuple.NewLayout(
		tuple.NewSchema("S",
			tuple.Column{Name: "k", Kind: tuple.KindInt},
			tuple.Column{Name: "v", Kind: tuple.KindInt}),
		tuple.NewSchema("T",
			tuple.Column{Name: "k", Kind: tuple.KindInt},
			tuple.Column{Name: "w", Kind: tuple.KindInt}),
	)
}

func mk(vals ...int64) *tuple.Tuple {
	vs := make([]tuple.Value, len(vals))
	for i, v := range vals {
		vs[i] = tuple.Int(v)
	}
	return tuple.New(vs...)
}

// TestParallelSelectionsMatchSingleNode: the union of partitioned
// execution equals per-query evaluation.
func TestParallelSelectionsMatchSingleNode(t *testing.T) {
	l := selLayout()
	p, err := New(Config{Nodes: 4, Buckets: 32, Layout: l, PartitionCol: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rng := rand.New(rand.NewSource(9))
	var conjs []expr.Conjunction
	const nq = 20
	for q := 0; q < nq; q++ {
		lo := int64(rng.Intn(80))
		conj := expr.Conjunction{
			{Col: 1, Op: expr.Ge, Val: tuple.Int(lo)},
			{Col: 1, Op: expr.Le, Val: tuple.Int(lo + 20)},
		}
		conjs = append(conjs, conj)
		if _, err := p.AddQuery(1, []expr.Predicate(conj), nil); err != nil {
			t.Fatal(err)
		}
	}
	ref := baseline.NewPerQuery(conjs)
	want := make([]int64, nq)
	const n = 5000
	for i := 0; i < n; i++ {
		tp := mk(int64(rng.Intn(1000)), int64(rng.Intn(100)))
		ref.Process(tp).ForEach(func(q int) { want[q]++ })
		if err := p.Ingest(0, tp); err != nil {
			t.Fatal(err)
		}
	}
	if !p.WaitIdle(10 * time.Second) {
		t.Fatal("cluster did not drain")
	}
	for q := 0; q < nq; q++ {
		if got := p.Delivered(q); got != want[q] {
			t.Errorf("query %d: cluster %d, single-node %d", q, got, want[q])
		}
	}
}

// TestCoPartitionedJoin: a shared join runs partition-parallel when the
// partition column is the join key.
func TestCoPartitionedJoin(t *testing.T) {
	l := joinLayout()
	var mu sync.Mutex
	results := 0
	p, err := New(Config{
		Nodes: 3, Buckets: 24, Layout: l, PartitionCol: 0,
		Joins: []cacq.JoinSpec{{StreamA: 0, StreamB: 1, ColA: 0, ColB: 2,
			TimeKind: window.Logical}},
		Output: func(int, *tuple.Tuple) { mu.Lock(); results++; mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.AddQuery(3, nil, nil); err != nil {
		t.Fatal(err)
	}
	const keys, perSide = 10, 6
	for i := 0; i < keys*perSide; i++ {
		p.Ingest(0, mk(int64(i%keys), int64(i)))
		p.Ingest(1, mk(int64(i%keys), int64(-i)))
	}
	if !p.WaitIdle(10 * time.Second) {
		t.Fatal("did not drain")
	}
	want := keys * perSide * perSide
	if got := p.Delivered(0); int(got) != want {
		t.Errorf("join results = %d, want %d", got, want)
	}
	mu.Lock()
	if results != want {
		t.Errorf("output callback saw %d", results)
	}
	mu.Unlock()
}

func TestNonCoPartitionedJoinRejected(t *testing.T) {
	l := joinLayout()
	_, err := New(Config{
		Nodes: 2, Layout: l, PartitionCol: 1, // v, not the join key
		Joins: []cacq.JoinSpec{{StreamA: 0, StreamB: 1, ColA: 0, ColB: 2,
			TimeKind: window.Logical}},
	})
	if err == nil {
		t.Fatal("non-co-partitioned join accepted")
	}
}

func TestDynamicQueryAdditionMidStream(t *testing.T) {
	l := selLayout()
	p, err := New(Config{Nodes: 2, Buckets: 8, Layout: l, PartitionCol: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q1, _ := p.AddQuery(1, []expr.Predicate{{Col: 1, Op: expr.Gt, Val: tuple.Int(50)}}, nil)
	for i := 0; i < 100; i++ {
		p.Ingest(0, mk(int64(i), int64(i%100)))
	}
	p.WaitIdle(10 * time.Second)
	q2, _ := p.AddQuery(1, []expr.Predicate{{Col: 1, Op: expr.Le, Val: tuple.Int(50)}}, nil)
	for i := 0; i < 100; i++ {
		p.Ingest(0, mk(int64(i), int64(i%100)))
	}
	p.WaitIdle(10 * time.Second)
	if got := p.Delivered(q1); got != 49*2 {
		t.Errorf("q1 = %d, want 98", got)
	}
	// q2 only saw the second batch.
	if got := p.Delivered(q2); got != 51 {
		t.Errorf("q2 = %d, want 51", got)
	}
}

func TestRebalanceSelectionWorkload(t *testing.T) {
	l := selLayout()
	p, err := New(Config{Nodes: 3, Buckets: 24, Layout: l, PartitionCol: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, _ := p.AddQuery(1, nil, nil)
	// Skewed keys: most tuples share key 0 but different buckets exist.
	for i := 0; i < 3000; i++ {
		p.Ingest(0, mk(int64(i%5), 1))
	}
	p.WaitIdle(10 * time.Second)
	p.Rebalance(1.2) // stateless consumers: migration is trivially safe
	for i := 0; i < 3000; i++ {
		p.Ingest(0, mk(int64(i%5), 1))
	}
	p.WaitIdle(10 * time.Second)
	if got := p.Delivered(q); got != 6000 {
		t.Errorf("delivered = %d, want 6000 (rebalance lost/duplicated tuples)", got)
	}
}

// TestFailoverExactlyOnce: with replication, killing a node neither loses
// nor duplicates results for stateless queries.
func TestFailoverExactlyOnce(t *testing.T) {
	l := selLayout()
	p, err := New(Config{Nodes: 3, Buckets: 24, Layout: l, PartitionCol: 0, Replicate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, _ := p.AddQuery(1, nil, nil)
	for i := 0; i < 1000; i++ {
		p.Ingest(0, mk(int64(i), 1))
	}
	if !p.WaitIdle(10 * time.Second) {
		t.Fatal("did not drain")
	}
	before := p.Delivered(q)
	if before != 1000 {
		t.Fatalf("pre-failure delivered = %d (replicas double-counted?)", before)
	}
	p.Fail(0)
	for i := 0; i < 1000; i++ {
		p.Ingest(0, mk(int64(i), 1))
	}
	if !p.WaitIdle(10 * time.Second) {
		t.Fatal("did not drain after failover")
	}
	got := p.Delivered(q) - before
	// The failed node's in-flight window was empty (we quiesced), so the
	// second kilotuple must be delivered exactly once.
	if got != 1000 {
		t.Errorf("post-failover delivered = %d, want 1000", got)
	}
	if p.Flux().Stats().Failovers == 0 {
		t.Error("no failovers recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 1, PartitionCol: 0}); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := New(Config{Nodes: 1, Layout: selLayout(), PartitionCol: 9}); err == nil {
		t.Error("out-of-range partition column accepted")
	}
	l := selLayout()
	p, _ := New(Config{Nodes: 1, Layout: l, PartitionCol: 0})
	defer p.Close()
	// Stream 0 exists; partition col must be carried by the stream fed.
	if err := p.Ingest(5, mk(1, 2)); err == nil {
		t.Error("bad stream index accepted")
	}
}
