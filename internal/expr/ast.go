package expr

import (
	"fmt"
	"strings"

	"telegraphcq/internal/tuple"
)

// ColRef names a column before binding, optionally qualified by relation
// (or relation alias).
type ColRef struct {
	Relation string // "" when unqualified
	Column   string
}

// String renders the reference in dotted form.
func (c ColRef) String() string {
	if c.Relation == "" {
		return c.Column
	}
	return c.Relation + "." + c.Column
}

// Qualified returns "rel.col" or just "col" when unqualified.
func (c ColRef) Qualified() string { return c.String() }

// Comparison is an unbound boolean factor produced by the parser. Exactly
// one of RightCol/RightVal is meaningful: IsJoin selects which.
type Comparison struct {
	Left     ColRef
	Op       Op
	RightCol ColRef      // when IsJoin
	RightVal tuple.Value // when !IsJoin
	IsJoin   bool
}

// String renders the comparison in SQL syntax.
func (c Comparison) String() string {
	if c.IsJoin {
		return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.RightCol)
	}
	right := c.RightVal.String()
	if c.RightVal.K == tuple.KindString {
		right = "'" + right + "'"
	}
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, right)
}

// Relations returns the set of relation qualifiers mentioned (may contain
// "" for unqualified references).
func (c Comparison) Relations() []string {
	if c.IsJoin {
		return []string{c.Left.Relation, c.RightCol.Relation}
	}
	return []string{c.Left.Relation}
}

// Bind resolves a non-join comparison against a schema, producing a
// Predicate. It reports an error for unknown or ambiguous columns.
func (c Comparison) Bind(s *tuple.Schema) (Predicate, error) {
	if c.IsJoin {
		return Predicate{}, fmt.Errorf("expr: %s is a join factor, not a selection", c)
	}
	i := s.ColumnIndex(c.Left.Qualified())
	if i < 0 {
		return Predicate{}, fmt.Errorf("expr: column %s not found in schema %s", c.Left, s)
	}
	return Predicate{Col: i, Op: c.Op, Val: c.RightVal}, nil
}

// BindJoin resolves a join comparison so that the Left side binds against
// probeSchema and the Right side against buildSchema, flipping the operator
// if the factor was written the other way around.
func (c Comparison) BindJoin(probeSchema, buildSchema *tuple.Schema) (JoinPredicate, error) {
	if !c.IsJoin {
		return JoinPredicate{}, fmt.Errorf("expr: %s is a selection, not a join factor", c)
	}
	l := probeSchema.ColumnIndex(c.Left.Qualified())
	r := buildSchema.ColumnIndex(c.RightCol.Qualified())
	if l >= 0 && r >= 0 {
		return JoinPredicate{LeftCol: l, Op: c.Op, RightCol: r}, nil
	}
	// Try the flipped orientation.
	l = probeSchema.ColumnIndex(c.RightCol.Qualified())
	r = buildSchema.ColumnIndex(c.Left.Qualified())
	if l >= 0 && r >= 0 {
		return JoinPredicate{LeftCol: l, Op: c.Op.Flip(), RightCol: r}, nil
	}
	return JoinPredicate{}, fmt.Errorf("expr: cannot bind join factor %s between %s and %s",
		c, probeSchema, buildSchema)
}

// SplitFactors partitions a conjunctive WHERE clause into single-variable
// factors (selections) and multi-variable factors (join predicates), the
// decomposition CACQ performs when a query enters the system.
func SplitFactors(where []Comparison) (selections, joins []Comparison) {
	for _, c := range where {
		if c.IsJoin {
			joins = append(joins, c)
		} else {
			selections = append(selections, c)
		}
	}
	return selections, joins
}

// FormatWhere renders a conjunction for diagnostics.
func FormatWhere(where []Comparison) string {
	parts := make([]string, len(where))
	for i, c := range where {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}
