package expr

import (
	"testing"
	"testing/quick"

	"telegraphcq/internal/tuple"
)

func TestOpApply(t *testing.T) {
	cases := []struct {
		op   Op
		cmp  int
		want bool
	}{
		{Eq, 0, true}, {Eq, -1, false},
		{Ne, 0, false}, {Ne, 1, true},
		{Lt, -1, true}, {Lt, 0, false},
		{Le, 0, true}, {Le, 1, false},
		{Gt, 1, true}, {Gt, 0, false},
		{Ge, 0, true}, {Ge, -1, false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.cmp); got != c.want {
			t.Errorf("%s.Apply(%d) = %v", c.op, c.cmp, got)
		}
	}
}

func TestOpFlipInvolution(t *testing.T) {
	// Property: a <op> b == b <flip(op)> a for all values.
	f := func(a, b int16, opRaw uint8) bool {
		op := Op(opRaw % 6)
		cmp := tuple.Compare(tuple.Int(int64(a)), tuple.Int(int64(b)))
		rcmp := tuple.Compare(tuple.Int(int64(b)), tuple.Int(int64(a)))
		return op.Apply(cmp) == op.Flip().Apply(rcmp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredicateEval(t *testing.T) {
	tup := tuple.New(tuple.Int(5), tuple.String_("MSFT"))
	cases := []struct {
		p    Predicate
		want bool
	}{
		{Predicate{Col: 0, Op: Gt, Val: tuple.Int(3)}, true},
		{Predicate{Col: 0, Op: Gt, Val: tuple.Int(5)}, false},
		{Predicate{Col: 0, Op: Ge, Val: tuple.Int(5)}, true},
		{Predicate{Col: 1, Op: Eq, Val: tuple.String_("MSFT")}, true},
		{Predicate{Col: 1, Op: Ne, Val: tuple.String_("IBM")}, true},
	}
	for _, c := range cases {
		if got := c.p.Eval(tup); got != c.want {
			t.Errorf("%s on %s = %v", c.p, tup, got)
		}
	}
}

func TestConjunction(t *testing.T) {
	tup := tuple.New(tuple.Int(5))
	c := Conjunction{
		{Col: 0, Op: Gt, Val: tuple.Int(1)},
		{Col: 0, Op: Lt, Val: tuple.Int(10)},
	}
	if !c.Eval(tup) {
		t.Error("conjunction should hold")
	}
	c = append(c, Predicate{Col: 0, Op: Eq, Val: tuple.Int(6)})
	if c.Eval(tup) {
		t.Error("conjunction should fail")
	}
}

func TestComparisonBind(t *testing.T) {
	s := tuple.NewSchema("stocks",
		tuple.Column{Name: "symbol", Kind: tuple.KindString},
		tuple.Column{Name: "price", Kind: tuple.KindFloat},
	)
	c := Comparison{Left: ColRef{Column: "price"}, Op: Gt, RightVal: tuple.Float(50)}
	p, err := c.Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	if p.Col != 1 || p.Op != Gt {
		t.Errorf("bound = %+v", p)
	}
	bad := Comparison{Left: ColRef{Column: "volume"}, Op: Gt, RightVal: tuple.Int(0)}
	if _, err := bad.Bind(s); err == nil {
		t.Error("binding unknown column should fail")
	}
}

func TestComparisonBindJoinFlips(t *testing.T) {
	a := tuple.NewSchema("a", tuple.Column{Name: "x", Kind: tuple.KindInt})
	b := tuple.NewSchema("b", tuple.Column{Name: "y", Kind: tuple.KindInt})
	// Written as b.y < a.x but bound with probe=a, build=b: must flip.
	c := Comparison{
		Left:     ColRef{Relation: "b", Column: "y"},
		Op:       Lt,
		RightCol: ColRef{Relation: "a", Column: "x"},
		IsJoin:   true,
	}
	jp, err := c.BindJoin(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if jp.Op != Gt {
		t.Errorf("op = %s, want > after flip", jp.Op)
	}
	probe := tuple.New(tuple.Int(5))
	build := tuple.New(tuple.Int(3))
	if !jp.Eval(probe, build) { // b.y=3 < a.x=5 should hold
		t.Error("flipped join predicate evaluates wrong")
	}
}

func TestSplitFactors(t *testing.T) {
	where := []Comparison{
		{Left: ColRef{Column: "p"}, Op: Gt, RightVal: tuple.Int(1)},
		{Left: ColRef{Relation: "a", Column: "x"}, Op: Eq,
			RightCol: ColRef{Relation: "b", Column: "y"}, IsJoin: true},
	}
	sel, joins := SplitFactors(where)
	if len(sel) != 1 || len(joins) != 1 {
		t.Errorf("split = %d selections, %d joins", len(sel), len(joins))
	}
}

func TestFormatWhere(t *testing.T) {
	where := []Comparison{
		{Left: ColRef{Column: "price"}, Op: Gt, RightVal: tuple.Float(50)},
		{Left: ColRef{Column: "symbol"}, Op: Eq, RightVal: tuple.String_("MSFT")},
	}
	got := FormatWhere(where)
	want := "price > 50 AND symbol = 'MSFT'"
	if got != want {
		t.Errorf("FormatWhere = %q, want %q", got, want)
	}
}

func TestStringRendering(t *testing.T) {
	if Op(99).String() == "" {
		t.Error("unknown op renders empty")
	}
	for op, want := range map[Op]string{Eq: "=", Ne: "<>", Lt: "<", Le: "<=", Gt: ">", Ge: ">="} {
		if op.String() != want {
			t.Errorf("%d = %q", op, op.String())
		}
	}
	p := Predicate{Col: 2, Op: Gt, Val: tuple.Int(5)}
	if p.String() != "$2 > 5" {
		t.Errorf("predicate = %q", p.String())
	}
	j := JoinPredicate{LeftCol: 1, Op: Eq, RightCol: 3}
	if j.String() != "$L1 = $R3" {
		t.Errorf("join predicate = %q", j.String())
	}
	c := Comparison{Left: ColRef{Relation: "a", Column: "x"}, Op: Lt,
		RightCol: ColRef{Column: "y"}, IsJoin: true}
	if c.String() != "a.x < y" {
		t.Errorf("comparison = %q", c.String())
	}
	s := Comparison{Left: ColRef{Column: "name"}, Op: Eq, RightVal: tuple.String_("bob")}
	if s.String() != "name = 'bob'" {
		t.Errorf("selection = %q", s.String())
	}
}

func TestComparisonRelations(t *testing.T) {
	j := Comparison{Left: ColRef{Relation: "a", Column: "x"}, Op: Eq,
		RightCol: ColRef{Relation: "b", Column: "y"}, IsJoin: true}
	rs := j.Relations()
	if len(rs) != 2 || rs[0] != "a" || rs[1] != "b" {
		t.Errorf("relations = %v", rs)
	}
	s := Comparison{Left: ColRef{Column: "x"}, Op: Eq, RightVal: tuple.Int(1)}
	if rs := s.Relations(); len(rs) != 1 || rs[0] != "" {
		t.Errorf("selection relations = %v", rs)
	}
}

func TestBindJoinOnSelectionFails(t *testing.T) {
	a := tuple.NewSchema("a", tuple.Column{Name: "x", Kind: tuple.KindInt})
	sel := Comparison{Left: ColRef{Column: "x"}, Op: Eq, RightVal: tuple.Int(1)}
	if _, err := sel.BindJoin(a, a); err == nil {
		t.Error("BindJoin on selection succeeded")
	}
	join := Comparison{Left: ColRef{Column: "nope"}, Op: Eq,
		RightCol: ColRef{Column: "alsono"}, IsJoin: true}
	if _, err := join.BindJoin(a, a); err == nil {
		t.Error("unresolvable join bound")
	}
	if _, err := join.Bind(a); err == nil {
		t.Error("Bind on join factor succeeded")
	}
}
