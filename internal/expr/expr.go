// Package expr defines the predicate language of the engine: comparison
// operators, single-variable boolean factors ("grouped-filterable"
// selections), and multi-variable factors (join predicates). Queries are
// decomposed into these factors exactly as CACQ does (§3.1): single-variable
// factors go to grouped filters, multi-variable factors to SteMs.
package expr

import (
	"fmt"

	"telegraphcq/internal/tuple"
)

// Op is a comparison operator.
type Op uint8

// Comparison operators.
const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator in SQL syntax.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Apply interprets a three-way comparison result under the operator.
func (o Op) Apply(cmp int) bool {
	switch o {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	default:
		return false
	}
}

// Flip returns the operator with sides exchanged: a < b  ==  b > a.
func (o Op) Flip() Op {
	switch o {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default:
		return o // Eq and Ne are symmetric
	}
}

// Predicate is a bound single-variable boolean factor: column <op> constant.
// Col indexes into the tuple the predicate is evaluated against.
type Predicate struct {
	Col int
	Op  Op
	Val tuple.Value
}

// Eval evaluates the predicate against a tuple.
func (p Predicate) Eval(t *tuple.Tuple) bool {
	return p.Op.Apply(tuple.Compare(t.Vals[p.Col], p.Val))
}

// String renders the predicate for diagnostics.
func (p Predicate) String() string {
	return fmt.Sprintf("$%d %s %s", p.Col, p.Op, p.Val)
}

// Conjunction is a bound AND of single-variable factors.
type Conjunction []Predicate

// Eval reports whether every factor holds on t.
func (c Conjunction) Eval(t *tuple.Tuple) bool {
	for _, p := range c {
		if !p.Eval(t) {
			return false
		}
	}
	return true
}

// JoinPredicate is a bound multi-variable factor relating a column of a
// probe tuple to a column of a stored (build) tuple: probe.LeftCol <op>
// build.RightCol.
type JoinPredicate struct {
	LeftCol  int
	Op       Op
	RightCol int
}

// Eval evaluates the join predicate on a (probe, build) tuple pair.
func (j JoinPredicate) Eval(probe, build *tuple.Tuple) bool {
	return j.Op.Apply(tuple.Compare(probe.Vals[j.LeftCol], build.Vals[j.RightCol]))
}

// String renders the join predicate for diagnostics.
func (j JoinPredicate) String() string {
	return fmt.Sprintf("$L%d %s $R%d", j.LeftCol, j.Op, j.RightCol)
}
