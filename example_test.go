package telegraphcq_test

import (
	"fmt"

	"telegraphcq"
)

// The canonical flow: declare a stream, register a standing query, feed
// data, and stream results.
func Example() {
	db := telegraphcq.Open(telegraphcq.Config{})
	defer db.Close()

	db.MustCreateStream("quotes", "ts TIME, sym STRING, price FLOAT", "ts")
	q, err := db.Register(`SELECT price FROM quotes WHERE sym = 'MSFT' AND price > 30`)
	if err != nil {
		panic(err)
	}
	rows := q.Subscribe(8)

	db.Feed("quotes", 1, "MSFT", 28.10)
	db.Feed("quotes", 2, "MSFT", 31.75)

	r := <-rows
	fmt.Printf("%.2f\n", r.Float(0))
	// Output: 31.75
}

// Windowed queries use the paper's for-loop construct; every result row
// carries its window instance in Row.T.
func ExampleDB_Register_windowed() {
	db := telegraphcq.Open(telegraphcq.Config{})
	defer db.Close()

	db.MustCreateStream("quotes", "ts TIME, sym STRING, price FLOAT", "ts")
	q, err := db.Register(`SELECT AVG(price) FROM quotes
		for (t = 3; t <= 4; t++) { WindowIs(quotes, t - 2, t); }`)
	if err != nil {
		panic(err)
	}
	for day := 1; day <= 6; day++ {
		db.Feed("quotes", day, "MSFT", float64(day))
	}
	q.Wait()
	rows, _ := q.Cursor().Fetch()
	for _, r := range rows {
		fmt.Printf("window@%d avg=%.1f\n", r.T, r.Float(0))
	}
	// Output:
	// window@3 avg=2.0
	// window@4 avg=3.0
}

// Pull cursors retrieve results on demand — disconnected clients catch up
// whenever they return (PSoup semantics).
func ExampleQuery_Cursor() {
	db := telegraphcq.Open(telegraphcq.Config{})
	defer db.Close()

	db.MustCreateStream("s", "x INT", "")
	q, err := db.Register(`SELECT x FROM s
		for (; t == 0; t = -1) { WindowIs(s, 1, 3); }`)
	if err != nil {
		panic(err)
	}
	for i := 1; i <= 5; i++ {
		db.Feed("s", i)
	}
	q.Wait()
	rows, _ := q.Cursor().Fetch()
	fmt.Println(len(rows))
	// Output: 3
}
