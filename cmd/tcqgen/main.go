// Command tcqgen writes synthetic workload streams as CSV, suitable for
// feeding a TelegraphCQ server via the FEED command or the file-reader
// ingress wrapper.
//
// Usage:
//
//	tcqgen -kind stocks  -n 10000 > stocks.csv
//	tcqgen -kind packets -n 10000 -zipf 1.0 > packets.csv
//	tcqgen -kind sensors -n 10000 -sensors 8 > readings.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"telegraphcq/internal/ingress"
	"telegraphcq/internal/workload"
)

func main() {
	kind := flag.String("kind", "stocks", "workload: stocks | packets | sensors | drift")
	n := flag.Int("n", 10000, "number of tuples")
	seed := flag.Int64("seed", 1, "random seed")
	zipf := flag.Float64("zipf", 0, "packets: host skew parameter (0 = uniform)")
	hosts := flag.Int("hosts", 1000, "packets: host count")
	sensors := flag.Int("sensors", 8, "sensors: sensor count")
	period := flag.Int64("period", 1000, "drift: phase length in tuples")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	emit := func(csv string) { fmt.Fprintln(w, csv) }

	switch *kind {
	case "stocks":
		gen := workload.NewStockGenerator(*seed, nil)
		for i := 0; i < *n; i++ {
			emit(ingress.FormatCSV(gen.Next()))
		}
	case "packets":
		gen := workload.NewPacketGenerator(*seed, *hosts, *zipf)
		for i := 0; i < *n; i++ {
			emit(ingress.FormatCSV(gen.Next()))
		}
	case "sensors":
		gen := workload.NewSensorGenerator(*seed, *sensors, 1)
		count := 0
		for count < *n {
			for _, t := range gen.Tick() {
				if count >= *n {
					break
				}
				emit(ingress.FormatCSV(t))
				count++
			}
		}
	case "drift":
		gen := workload.NewDriftGenerator(*seed, *period)
		for i := 0; i < *n; i++ {
			emit(ingress.FormatCSV(gen.Next()))
		}
	default:
		fmt.Fprintf(os.Stderr, "tcqgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
