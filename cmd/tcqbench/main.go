// Command tcqbench runs the experiment harness: one experiment per
// table/figure/claim indexed in DESIGN.md §4 (E1–E16), printing the
// paper's qualitative claim next to measured numbers.
//
// Usage:
//
//	tcqbench                    # run everything
//	tcqbench -exp E2,E5         # run selected experiments
//	tcqbench -json report.json  # also write tables (with metric snapshots) as JSON ("-" = stdout)
//	tcqbench -list              # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"telegraphcq/internal/bench"
	"telegraphcq/internal/chaos"
)

// clk is the wall clock, reached through chaos.Clock per the repo-wide
// clockcheck discipline.
var clk = chaos.Real()

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	jsonPath := flag.String("json", "", "write results (incl. metric registry snapshots) as JSON to this path (\"-\" = stdout)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	all := bench.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	failed := 0
	var tables []*bench.Table
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Name)
		start := clk.Now()
		tb, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		tb.Render(os.Stdout)
		tables = append(tables, tb)
		fmt.Fprintf(os.Stderr, "%s done in %s\n", e.ID, clk.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tcqbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteJSON(out, tables); err != nil {
			fmt.Fprintf(os.Stderr, "tcqbench: %v\n", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
