// Package lockcheck is the tcqlint fixture for the declared mutex
// acquisition order. The test runs the analyzer with a fixture-local
// table ordering Outer.mu before Inner.mu.
package lockcheck

import "sync"

// Outer is the outermost lock class in the fixture table.
type Outer struct{ mu sync.Mutex }

// Inner must only be acquired after (or independently of) Outer.
type Inner struct{ mu sync.RWMutex }

// good nests in the declared direction.
func good(o *Outer, i *Inner) {
	o.mu.Lock()
	i.mu.RLock()
	i.mu.RUnlock()
	o.mu.Unlock()
}

// sequential releases before acquiring the outer class; no nesting.
func sequential(o *Outer, i *Inner) {
	i.mu.Lock()
	i.mu.Unlock()
	o.mu.Lock()
	o.mu.Unlock()
}

// inverted acquires the outer class while holding the inner one.
func inverted(o *Outer, i *Inner) {
	i.mu.Lock()
	o.mu.Lock() // want `acquires fixture/lockcheck\.Outer\.mu while fixture/lockcheck\.Inner\.mu is held`
	o.mu.Unlock()
	i.mu.Unlock()
}

// viaHelper hides the inversion behind a same-package call; the call-site
// summary catches it.
func viaHelper(o *Outer, i *Inner) {
	i.mu.Lock()
	defer i.mu.Unlock()
	lockOuter(o) // want `call to lockOuter acquires fixture/lockcheck\.Outer\.mu while fixture/lockcheck\.Inner\.mu is held`
}

func lockOuter(o *Outer) {
	o.mu.Lock()
	o.mu.Unlock()
}

// spawned hands the outer acquisition to a goroutine, which holds nothing
// of the spawner's; function literals are separate analysis units.
func spawned(o *Outer, i *Inner, done chan struct{}) {
	i.mu.Lock()
	defer i.mu.Unlock()
	go func() {
		o.mu.Lock()
		o.mu.Unlock()
		close(done)
	}()
}
