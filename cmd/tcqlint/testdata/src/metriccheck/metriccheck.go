// Package metriccheck is the tcqlint fixture for the Prometheus naming
// and registration rules: tcq_-prefixed snake_case families, statically
// resolvable names, and single-site RegisterFunc registration.
package metriccheck

import (
	"fmt"

	"telegraphcq/internal/metrics"
)

const okFamily = "tcq_fixture_events_total"

// good covers the resolvable shapes: literals, constants, labeled series,
// constant-prefix concatenation, Sprintf formats, and range over a map
// literal with constant keys.
func good(r *metrics.Registry, stream string) {
	r.Counter(okFamily).Inc()
	r.Counter(`tcq_fixture_drops_total{stream="a"}`).Add(1)
	r.Counter("tcq_fixture_in_total{stream=\"" + stream + "\"}").Inc()
	r.Gauge(fmt.Sprintf("tcq_fixture_depth{shard=%q}", "s0")).Set(1)
	r.Histogram("tcq_fixture_latency_seconds", 64)
	for name, v := range map[string]float64{"tcq_fixture_a": 1, "tcq_fixture_b": 2} {
		r.Gauge(name).Set(v)
	}
}

// goodIntrospection mirrors the observability subsystem's families: the
// per-module hop-latency histograms keyed by Sprintf label, and the
// introspection publisher counters.
func goodIntrospection(r *metrics.Registry, module string) {
	r.Histogram(fmt.Sprintf("tcq_hop_latency_seconds{module=%q}", module), 1024)
	r.Counter("tcq_introspect_published_total").Inc()
	r.Counter("tcq_introspect_dropped_total").Add(1)
	r.RegisterFunc("tcq_introspect_ticks_total", metrics.KindCounter, func() float64 { return 0 })
}

// goodRouting mirrors the adaptive-routing families: the probe-order
// planning counters registered per query (label appended to a constant
// family prefix, the query.go/pareddy.go pattern).
func goodRouting(r *metrics.Registry, lbl string) {
	for name := range map[string]struct{}{
		"tcq_policy_orders_total":       {},
		"tcq_policy_order_reuses_total": {},
		"tcq_nway_pruned_total":         {},
	} {
		r.RegisterFunc(name+`{query="1"}`, metrics.KindCounter, func() float64 { return 0 })
	}
	r.Counter(`tcq_policy_orders_total{query="2"}`).Inc()
}

// bad covers the naming failures and an unresolvable name.
func bad(r *metrics.Registry, name string) {
	r.Counter("fixture_events_total").Inc() // want `metric family "fixture_events_total" passed to Registry\.Counter is not tcq_-prefixed`
	r.Gauge("tcq_BadName").Set(1)           // want `metric family "tcq_BadName" passed to Registry\.Gauge is not tcq_-prefixed` `metric name "tcq_BadName" is not tcq_-prefixed`
	r.Counter(name).Inc()                   // want `metric name passed to Registry\.Counter is not statically resolvable`
}

// registerOnce and registerTwice register the same constant family from
// two call sites; both sites are flagged.
func registerOnce(r *metrics.Registry) {
	r.RegisterFunc("tcq_fixture_static_value", metrics.KindGauge, func() float64 { return 1 }) // want `registered by RegisterFunc at 2 call sites`
}

func registerTwice(r *metrics.Registry) {
	r.RegisterFunc("tcq_fixture_static_value", metrics.KindGauge, func() float64 { return 2 }) // want `registered by RegisterFunc at 2 call sites`
}

// recorder is a registrar forwarder: it records each series name while
// forwarding to the registry. The pass-through call inside RegisterFunc
// is exempt (its name is the method's own parameter); call sites of the
// forwarder are held to the same resolvability and naming rules as the
// registry itself.
type recorder struct {
	r     *metrics.Registry
	names []string
}

func (m *recorder) RegisterFunc(name string, kind metrics.Kind, fn func() float64) {
	m.names = append(m.names, name)
	m.r.RegisterFunc(name, kind, fn)
}

func goodForwarder(m *recorder, q int) {
	m.RegisterFunc("tcq_fixture_forwarded_total", metrics.KindCounter, func() float64 { return 0 })
	m.RegisterFunc(fmt.Sprintf("tcq_fixture_forwarded_depth{query=%q}", "7"), metrics.KindGauge, func() float64 { return 1 })
}

func badForwarder(m *recorder, name string) {
	m.RegisterFunc(name, metrics.KindCounter, func() float64 { return 0 }) // want `metric name passed to Registry\.RegisterFunc is not statically resolvable`
}
