// Package chancheck is the tcqlint fixture for goroutine and channel
// lifecycle: spawned loops with no shutdown path, operations on closed
// channels (directly or through a callee), and stuck senders.
package chancheck

// pump loops on its channel forever with no exit: spawning it as a
// goroutine leaks it (ForeverLoop travels through the summary).
func pump(ch chan int, sink *int) {
	for {
		*sink += <-ch
	}
}

// shutdown closes its argument; callers' later sends are flagged
// through the summary's Closes bit.
func shutdown(ch chan int) {
	close(ch)
}

// spawnLoopNoExit starts an inline goroutine whose receive loop has no
// shutdown case.
func spawnLoopNoExit(ch chan int, sink *int) {
	go func() { // want `goroutine runs a channel-coupled infinite loop with no shutdown path`
		for {
			*sink += <-ch
		}
	}()
}

// spawnNamedForever hides the same loop one call down.
func spawnNamedForever(ch chan int, sink *int) {
	go pump(ch, sink) // want `goroutine runs chancheck\.pump, whose body is a channel-coupled infinite loop with no shutdown path`
}

// sendAfterClose panics at the send.
func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want `send on ch after close closed it`
}

// sendAfterCalleeClose panics the same way: the close hides in shutdown.
func sendAfterCalleeClose() {
	ch := make(chan int, 1)
	shutdown(ch)
	ch <- 1 // want `send on ch after chancheck\.shutdown closed it`
}

// doubleClose panics at the second close.
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want `close of ch after close already closed it`
}

// stuckSender spawns a producer on an unbuffered channel nobody drains.
func stuckSender(v int) {
	ch := make(chan int)
	go func() {
		ch <- v // want `goroutine sends on unbuffered ch, but the channel is never received from, closed, or passed on`
	}()
}

// --- negative cases ---

// loopWithQuit has a shutdown case: the return exits the loop.
func loopWithQuit(ch chan int, quit chan struct{}, sink *int) {
	go func() {
		for {
			select {
			case v := <-ch:
				*sink += v
			case <-quit:
				return
			}
		}
	}()
}

// rangeLoop terminates when the producer closes the channel.
func rangeLoop(ch chan int, sink *int) {
	go func() {
		for v := range ch {
			*sink += v
		}
	}()
}

// reassigned revives the channel variable before the send.
func reassigned() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
}

// drainedSender is the classic worker handoff: the declaring body
// receives what the goroutine sends.
func drainedSender(v int) int {
	ch := make(chan int)
	go func() {
		ch <- v
	}()
	return <-ch
}

// escapingChan hands the channel to a callee that may drain it.
func escapingChan(v int) {
	ch := make(chan int)
	go func() {
		ch <- v
	}()
	drain(ch)
}

func drain(ch chan int) {
	<-ch
}

// bufferedSender completes without a receiver: capacity one absorbs it.
func bufferedSender(v int) {
	ch := make(chan int, 1)
	go func() {
		ch <- v
	}()
}
