// Package poolcheck is the tcqlint fixture for tuple-pool lifetime
// discipline: a variable handed to Pool.Put is dead until reassigned.
package poolcheck

import "telegraphcq/internal/tuple"

// useAfterPut reads the recycled tuple; the read is a finding.
func useAfterPut(p *tuple.Pool) int {
	t := p.Get(2)
	p.Put(t)
	return len(t.Vals) // want `t is used after Pool\.Put recycled it`
}

// doublePut hands the same tuple back twice; the second Put is a use.
func doublePut(p *tuple.Pool) {
	t := p.Get(1)
	p.Put(t)
	p.Put(t) // want `t is used after Pool\.Put recycled it`
}

// guarded is the engine's guard-and-bail idiom: the Put sits in a block
// that transfers control, so later iterations (and the code after the if)
// see a fresh binding and stay clean.
func guarded(p *tuple.Pool, ts []*tuple.Tuple) int {
	n := 0
	for _, t := range ts {
		if t.TS < 0 {
			p.Put(t)
			continue
		}
		n += len(t.Vals)
	}
	return n
}

// reassigned overwrites the variable before reading it again.
func reassigned(p *tuple.Pool) int {
	t := p.Get(1)
	p.Put(t)
	t = p.Get(3)
	return len(t.Vals)
}

// deferredPut recycles at return, after every read.
func deferredPut(p *tuple.Pool) int {
	t := p.Get(1)
	defer p.Put(t)
	return len(t.Vals)
}

// useAfterBlockRelease reads a column of the freed block; the read is a
// finding (at runtime it would panic on the poisoned block).
func useAfterBlockRelease(a *tuple.Arena) int {
	b := a.Get(2, 64)
	b.Release()
	return len(b.Col(0)) // want `b is used after Block\.Release freed it`
}

// useAfterArenaRelease frees through the arena; same discipline.
func useAfterArenaRelease(a *tuple.Arena) int {
	b := a.Get(2, 64)
	a.Release(b)
	return b.Len() // want `b is used after Arena\.Release freed it`
}

// doubleRelease frees the same block twice; the second call is a use.
func doubleRelease(a *tuple.Arena) {
	b := a.Get(1, 8)
	b.Release()
	b.Release() // want `b is used after Block\.Release freed it`
}

// releaseThenReget is the engine's grow-the-ingress-block idiom: the
// variable is reassigned from the arena before the next read.
func releaseThenReget(a *tuple.Arena, need int) int {
	b := a.Get(2, 64)
	if b.Cap() < need {
		b.Release()
		b = a.Get(2, need)
	}
	return b.Cap()
}

// guardedRelease confines the kill to a control-transferring block, the
// same shape guarded uses for Pool.Put.
func guardedRelease(a *tuple.Arena, blocks []*tuple.Block) int {
	n := 0
	for _, b := range blocks {
		if b.Len() == 0 {
			b.Release()
			continue
		}
		n += b.Len()
	}
	return n
}
