// Package poolcheck is the tcqlint fixture for tuple-pool lifetime
// discipline: a variable handed to Pool.Put is dead until reassigned.
package poolcheck

import "telegraphcq/internal/tuple"

// useAfterPut reads the recycled tuple; the read is a finding.
func useAfterPut(p *tuple.Pool) int {
	t := p.Get(2)
	p.Put(t)
	return len(t.Vals) // want `t is used after Pool\.Put recycled it`
}

// doublePut hands the same tuple back twice; the second Put is a use.
func doublePut(p *tuple.Pool) {
	t := p.Get(1)
	p.Put(t)
	p.Put(t) // want `t is used after Pool\.Put recycled it`
}

// guarded is the engine's guard-and-bail idiom: the Put sits in a block
// that transfers control, so later iterations (and the code after the if)
// see a fresh binding and stay clean.
func guarded(p *tuple.Pool, ts []*tuple.Tuple) int {
	n := 0
	for _, t := range ts {
		if t.TS < 0 {
			p.Put(t)
			continue
		}
		n += len(t.Vals)
	}
	return n
}

// reassigned overwrites the variable before reading it again.
func reassigned(p *tuple.Pool) int {
	t := p.Get(1)
	p.Put(t)
	t = p.Get(3)
	return len(t.Vals)
}

// deferredPut recycles at return, after every read.
func deferredPut(p *tuple.Pool) int {
	t := p.Get(1)
	defer p.Put(t)
	return len(t.Vals)
}
