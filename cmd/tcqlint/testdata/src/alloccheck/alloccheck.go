// Package alloccheck is the tcqlint fixture for the hot-path allocation
// analyzer: a //tcq:hotpath function and every repository function it
// transitively calls must not heap-allocate.
package alloccheck

// state carries the reusable buffers negative cases lean on.
type state struct {
	buf   []int
	cache map[int]int
	sum   int
}

// hotMake allocates directly in the annotated root.
//
//tcq:hotpath
func hotMake(n int) []int {
	return make([]int, n) // want `allocation on the hot path: make in alloccheck\.hotMake, which is marked //tcq:hotpath`
}

// hotRoot is clean itself but reaches an allocating helper: the
// diagnostic names both the site's function and the root.
//
//tcq:hotpath
func hotRoot(s *state, n int) {
	helper(s, n)
}

func helper(s *state, n int) {
	s.buf = grow(n)
}

func grow(n int) []int {
	return make([]int, n) // want `allocation on the hot path: make in alloccheck\.grow, reached from //tcq:hotpath root alloccheck\.hotRoot`
}

// hotMapWrite may grow a bucket on every insert.
//
//tcq:hotpath
func hotMapWrite(s *state, k, v int) {
	s.cache[k] = v // want `allocation on the hot path: map write in alloccheck\.hotMapWrite`
}

// hotLocalAppend grows a throwaway slice from empty on every call.
//
//tcq:hotpath
func hotLocalAppend(vs []int) int {
	var out []int
	for _, v := range vs {
		out = append(out, v*2) // want `append to function-local slice`
	}
	return len(out)
}

// hotConcat builds a fresh string per call.
//
//tcq:hotpath
func hotConcat(a, b string) string {
	return a + b // want `allocation on the hot path: string concatenation in alloccheck\.hotConcat`
}

// hotSpawn starts a goroutine per call: a g-stack allocation at minimum.
//
//tcq:hotpath
func hotSpawn(s *state) {
	go drainInto(s) // want `allocation on the hot path: goroutine spawn in alloccheck\.hotSpawn`
}

func drainInto(s *state) { s.sum++ }

// conflicted claims to be both a zero-alloc root and an audited
// allocation point; the directives contradict each other.
//
//tcq:hotpath
//tcq:coldpath
func conflicted() {} // want `conflicted is marked both //tcq:hotpath and //tcq:coldpath`

// --- negative cases ---

// hotViaColdpath reaches an allocating helper through an audited
// amortization point: propagation stops at the //tcq:coldpath boundary.
//
//tcq:hotpath
func hotViaColdpath(s *state, n int) {
	if cap(s.buf) < n {
		s.refill(n)
	}
	s.buf = s.buf[:n]
}

// refill carves a fresh slab once per high-water mark.
//
//tcq:coldpath
func (s *state) refill(n int) {
	s.buf = make([]int, n)
}

// hotFieldAppend reuses a field buffer: append to a field is the
// sanctioned steady-state idiom, not a per-call allocation.
//
//tcq:hotpath
func hotFieldAppend(s *state, vs []int) {
	s.buf = s.buf[:0]
	for _, v := range vs {
		s.buf = append(s.buf, v)
	}
}

// hotSuppressed carries a reviewed per-site suppression.
//
//tcq:hotpath
func hotSuppressed(s *state, k int) {
	//lint:ignore alloccheck fixture: audited amortized insert
	s.cache[k] = k
}

// hotPanicPath allocates only while dying: panic arguments are off the
// hot path by construction.
//
//tcq:hotpath
func hotPanicPath(n int, label string) {
	if n < 0 {
		panic("negative row count in batch " + label)
	}
}

// coldOnly allocates freely: no hot root reaches it.
func coldOnly(n int) []int {
	return make([]int, n)
}
