// Package lineagecheck is the tcqlint fixture for tuple lineage hygiene:
// outside internal/tuple the Ready/Done bitmaps are written only through
// the accessors, which preserve done ⊆ ready.
package lineagecheck

import "telegraphcq/internal/tuple"

// bad writes the bitmaps directly in all three flagged shapes.
func bad(t *tuple.Tuple) {
	t.Done |= 2  // want `direct store to tuple lineage bitmap \.Done`
	t.Ready = 7  // want `direct store to tuple lineage bitmap \.Ready`
	t.Done++     // want `direct update of tuple lineage bitmap \.Done`
	_ = &t.Ready // want `taking the address of tuple lineage bitmap \.Ready`
}

// good goes through the accessors; reads are always fine.
func good(t, u *tuple.Tuple) uint64 {
	t.MarkDone(2)
	t.SetLineage(0xff, 0x0f)
	u.CopyLineage(t)
	u.ClearLineage()
	return t.Ready &^ t.Done
}
