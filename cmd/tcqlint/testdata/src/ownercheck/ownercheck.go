// Package ownercheck is the tcqlint fixture for interprocedural
// recycler-ownership discipline: releases and ownership transfers that
// hide one call down still kill or claim the value in the caller.
package ownercheck

import "telegraphcq/internal/tuple"

// recycle returns t to the pool; its summary records that slot 1 dies.
func recycle(p *tuple.Pool, t *tuple.Tuple) {
	p.Put(t)
}

// freeBlock releases b two calls down; the summary composes.
func freeBlock(b *tuple.Block) {
	dropBlock(b)
}

func dropBlock(b *tuple.Block) {
	b.Release()
}

// sink retains every tuple handed to it: its summary records that slot 1
// is stored (ownership may transfer).
type sink struct {
	kept []*tuple.Tuple
}

func (s *sink) keep(t *tuple.Tuple) {
	s.kept = append(s.kept, t)
}

// fresh returns an owned tuple; its summary records ReturnsOwned.
func fresh(p *tuple.Pool) *tuple.Tuple {
	return p.Get(2)
}

// useAfterCalleeRelease reads the tuple after recycle's Put killed it.
func useAfterCalleeRelease(p *tuple.Pool) int {
	t := p.Get(2)
	recycle(p, t)
	return len(t.Vals) // want `t is used after ownercheck\.recycle released it`
}

// useAfterDeepRelease shows the summary composing through two calls.
func useAfterDeepRelease(a *tuple.Arena) int {
	b := a.Get(2, 64)
	freeBlock(b)
	return b.Len() // want `b is used after ownercheck\.freeBlock released it`
}

// doubleReleaseThroughCallee hands the dead tuple straight back to the
// pool: the second release is a use of a released value.
func doubleReleaseThroughCallee(p *tuple.Pool) {
	t := p.Get(1)
	recycle(p, t)
	p.Put(t) // want `t is used after ownercheck\.recycle released it`
}

// releaseAfterTransfer frees a tuple the sink may now own.
func releaseAfterTransfer(p *tuple.Pool, s *sink) {
	t := p.Get(1)
	s.keep(t)
	p.Put(t) // want `Pool\.Put releases t after ownercheck\.sink\.keep may have taken ownership`
}

// discardedProducer drops the owned result on the floor.
func discardedProducer(p *tuple.Pool) {
	p.Get(3) // want `result of Pool\.Get is discarded: the owned value leaks`
}

// blankProducer binds the owned result to _, which is the same leak.
func blankProducer(a *tuple.Arena) {
	_ = a.Get(1, 8) // want `owned result of Arena\.Get is assigned to _: the value leaks`
}

// overwrittenBeforeUse rebinds the variable before the first value is
// ever read: the first tuple leaks.
func overwrittenBeforeUse(p *tuple.Pool) {
	t := p.Get(1) // want `t is reassigned before the owned result of Pool\.Get is used: the first value leaks`
	t = p.Get(2)
	p.Put(t)
}

// leakThroughReturnsOwned shows the producer set growing through
// summaries: fresh is owned because Pool.Get is.
func leakThroughReturnsOwned(p *tuple.Pool) {
	t := fresh(p) // want `t is reassigned before the owned result of fresh is used`
	t = fresh(p)
	p.Put(t)
}

// --- negative cases: the engine's allowed idioms stay silent ---

// deferredRelease is the standard cleanup idiom.
func deferredRelease(p *tuple.Pool) int {
	t := p.Get(1)
	defer recycle(p, t)
	return len(t.Vals)
}

// conditionalTransfer branches on whether the transfer happened: the
// release on the failure path is the correct cleanup, not a double free.
func conditionalTransfer(p *tuple.Pool, q chan *tuple.Tuple) {
	t := p.Get(1)
	select {
	case q <- t:
	default:
		if !tryHand(q, t) {
			p.Put(t)
		}
	}
}

func tryHand(q chan *tuple.Tuple, t *tuple.Tuple) bool {
	select {
	case q <- t:
		return true
	default:
		return false
	}
}

// reassigned revives the variable with a fresh value before reading it.
func reassigned(p *tuple.Pool) int {
	t := p.Get(1)
	recycle(p, t)
	t = p.Get(2)
	return len(t.Vals)
}

// returnedOwned passes ownership up: the caller inherits the duty.
func returnedOwned(p *tuple.Pool) *tuple.Tuple {
	t := p.Get(4)
	return t
}

// storedOwned parks the value in a sink: stored, not leaked.
func storedOwned(p *tuple.Pool, s *sink) {
	t := p.Get(1)
	s.keep(t)
}
