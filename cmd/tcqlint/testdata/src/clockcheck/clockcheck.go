// Package clockcheck is the tcqlint fixture for the raw-time ban: every
// clock-reading or timer entry point of package time is flagged outside
// internal/chaos, while pure time arithmetic and chaos.Clock usage pass.
package clockcheck

import (
	"time"

	"telegraphcq/internal/chaos"
)

// bad reaches the wall clock directly; every call is a finding.
func bad() time.Time {
	time.Sleep(time.Millisecond)      // want `time\.Sleep bypasses the injectable clock`
	<-time.After(time.Millisecond)    // want `time\.After bypasses the injectable clock`
	tk := time.NewTicker(time.Second) // want `time\.NewTicker bypasses the injectable clock`
	tk.Stop()
	_ = time.Since(time.Time{}) // want `time\.Since bypasses the injectable clock`
	return time.Now()           // want `time\.Now bypasses the injectable clock`
}

// good threads a chaos.Clock; durations, formatting and time.Time
// arithmetic stay legal anywhere.
func good(clk chaos.Clock) time.Duration {
	start := clk.Now()
	clk.Sleep(time.Millisecond)
	<-clk.After(10 * time.Microsecond)
	return clk.Since(start).Round(time.Millisecond)
}

// suppressed documents a sanctioned exception through the ignore
// directive; no diagnostic may survive.
func suppressed() time.Time {
	//lint:ignore clockcheck fixture exercises the suppression path
	return time.Now()
}
