// Command tcqlint is the repo's invariant linter: a multichecker of five
// repo-specific analyzers (clockcheck, poolcheck, lineagecheck,
// metriccheck, lockcheck) enforcing the engine's concurrency and lifecycle
// invariants that go vet cannot see. It type-checks the named packages
// (tests included) from source — dependencies come from build-cache export
// data, so it runs hermetically — applies every analyzer, and exits
// non-zero when findings remain.
//
// Usage:
//
//	go run ./cmd/tcqlint ./...
//	go run ./cmd/tcqlint -c clockcheck,lockcheck ./internal/core/
//
// Suppress an individual finding with a `//lint:ignore <analyzer> reason`
// comment on, or on the line above, the flagged line (see TESTING.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"telegraphcq/internal/lint"
	"telegraphcq/internal/lint/checks"
)

func main() {
	var (
		only = flag.String("c", "", "comma-separated subset of analyzers to run (default all)")
		list = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tcqlint [-c checks] [-list] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := checks.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "tcqlint: unknown analyzer %q (try -list)\n", name)
			os.Exit(2)
		}
		suite = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcqlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(dir, patterns, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcqlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tcqlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
