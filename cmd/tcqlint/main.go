// Command tcqlint is the repo's invariant linter: a multichecker of eight
// repo-specific analyzers (clockcheck, poolcheck, ownercheck, alloccheck,
// chancheck, lineagecheck, metriccheck, lockcheck) enforcing the engine's
// concurrency, lifecycle, and hot-path allocation invariants that go vet
// cannot see. It type-checks the named packages
// (tests included) from source — dependencies come from build-cache export
// data, so it runs hermetically — applies every analyzer, and exits
// non-zero when findings remain.
//
// Usage:
//
//	go run ./cmd/tcqlint ./...
//	go run ./cmd/tcqlint -c clockcheck,lockcheck ./internal/core/
//
// Suppress an individual finding with a `//lint:ignore <analyzer> reason`
// comment on, or on the line above, the flagged line (see TESTING.md).
// Audit the suppressions with -ignores: every directive is listed with its
// location, and directives that no longer suppress anything are marked
// STALE and fail the run, so fixed code sheds its excuses.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"telegraphcq/internal/lint"
	"telegraphcq/internal/lint/checks"
)

func main() {
	var (
		only    = flag.String("c", "", "comma-separated subset of analyzers to run (default all)")
		list    = flag.Bool("list", false, "list the analyzers and exit")
		ignores = flag.Bool("ignores", false, "audit //lint:ignore directives: list each with its location and flag stale ones (directives that no longer suppress anything)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tcqlint [-c checks] [-list] [-ignores] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := checks.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "tcqlint: unknown analyzer %q (try -list)\n", name)
			os.Exit(2)
		}
		suite = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcqlint: %v\n", err)
		os.Exit(2)
	}
	diags, audits, err := lint.RunWithAudit(dir, patterns, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcqlint: %v\n", err)
		os.Exit(2)
	}
	if *ignores {
		// Audit mode: the run's findings still print (a suppression audit
		// must not hide live findings), followed by the directive ledger.
		// A directive is stale when the full suite ran and it suppressed
		// nothing — the code it excused has been fixed or deleted, so the
		// excuse should be deleted too. With -c only a subset runs, so
		// unused directives for unselected analyzers are reported as
		// unexercised rather than stale.
		stale := 0
		for _, a := range audits {
			state := "used"
			if !a.Used {
				if *only == "" {
					state = "STALE"
					stale++
				} else {
					state = "unexercised"
				}
			}
			name := a.Pos.Filename
			// Repo-relative paths keep the committed ledger machine-independent.
			if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Printf("%s:%d: [%s] %s\n", name, a.Pos.Line, state, a.Text)
		}
		fmt.Fprintf(os.Stderr, "tcqlint: %d ignore directive(s), %d stale\n", len(audits), stale)
		for _, d := range diags {
			fmt.Println(d)
		}
		if stale > 0 || len(diags) > 0 {
			os.Exit(1)
		}
		return
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tcqlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
