package main

import (
	"testing"

	"telegraphcq/internal/lint"
	"telegraphcq/internal/lint/checks"
)

// The fixtures under testdata/src are analysistest-style: every expected
// diagnostic is declared with a `// want "regexp"` comment, and the run
// fails on both unexpected and missing findings. Each fixture also
// carries negative cases proving the analyzer's allowed idioms stay
// silent; the clockcheck fixture exercises //lint:ignore suppression.

func TestClockCheckFixture(t *testing.T) {
	lint.RunFixture(t, "testdata/src/clockcheck", checks.ClockCheck())
}

func TestPoolCheckFixture(t *testing.T) {
	lint.RunFixture(t, "testdata/src/poolcheck", checks.PoolCheck())
}

func TestOwnerCheckFixture(t *testing.T) {
	lint.RunFixture(t, "testdata/src/ownercheck", checks.OwnerCheck(checks.NewRepoSummaries()))
}

func TestAllocCheckFixture(t *testing.T) {
	lint.RunFixture(t, "testdata/src/alloccheck", checks.AllocCheck(checks.NewRepoSummaries()))
}

func TestChanCheckFixture(t *testing.T) {
	lint.RunFixture(t, "testdata/src/chancheck", checks.ChanCheck(checks.NewRepoSummaries()))
}

func TestLineageCheckFixture(t *testing.T) {
	lint.RunFixture(t, "testdata/src/lineagecheck", checks.LineageCheck())
}

func TestMetricCheckFixture(t *testing.T) {
	lint.RunFixture(t, "testdata/src/metriccheck", checks.MetricCheck())
}

func TestLockCheckFixture(t *testing.T) {
	order := []checks.LockClass{
		{Path: "fixture/lockcheck", Type: "Outer", Field: "mu"},
		{Path: "fixture/lockcheck", Type: "Inner", Field: "mu"},
	}
	lint.RunFixture(t, "testdata/src/lockcheck", checks.LockCheck(order))
}
