// Command tcq is an interactive client for a TelegraphCQ server: a thin
// REPL over the line protocol. Push rows from SUBSCRIBEd queries are
// printed as they arrive, interleaved with command replies — the
// "results stream out while the user interacts" mode of §1.1.
//
// Usage:
//
//	tcq -addr 127.0.0.1:5433
//	> CREATE STREAM s (x INT, y FLOAT)
//	> QUERY SELECT x FROM s WHERE y > 1.5
//	> SUBSCRIBE 0
//	> FEED s 7,2.5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "server address")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcq: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	fmt.Printf("connected to %s; type commands (QUIT to exit)\n", *addr)

	// Reader: print everything the server sends.
	go func() {
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			fmt.Println(sc.Text())
		}
		fmt.Println("(connection closed)")
		os.Exit(0)
	}()

	in := bufio.NewScanner(os.Stdin)
	w := bufio.NewWriter(conn)
	for {
		fmt.Print("> ")
		if !in.Scan() {
			return
		}
		line := in.Text()
		if line == "" {
			continue
		}
		w.WriteString(line + "\n")
		w.Flush()
		if line == "QUIT" || line == "quit" {
			return
		}
	}
}
