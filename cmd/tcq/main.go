// Command tcq is an interactive client for a TelegraphCQ server: a thin
// REPL over the line protocol. Push rows from SUBSCRIBEd queries are
// printed as they arrive, interleaved with command replies — the
// "results stream out while the user interacts" mode of §1.1. Tabular
// replies (the live EXPLAIN <qid> and TOP telemetry tables) are buffered
// until their END and printed column-aligned.
//
// Usage:
//
//	tcq -addr 127.0.0.1:5433
//	> CREATE STREAM s (x INT, y FLOAT)
//	> QUERY SELECT x FROM s WHERE y > 1.5
//	> SUBSCRIBE 0
//	> FEED s 7,2.5
//	> EXPLAIN 0
//	> TOP 10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"text/tabwriter"
)

// printer renders server lines, collecting tab-separated ROW lines into a
// table flushed (aligned) when the reply's END arrives.
type printer struct {
	table []string
}

const rowPrefix = "ROW . "

func (p *printer) line(s string) {
	if strings.HasPrefix(s, rowPrefix) && strings.ContainsRune(s, '\t') {
		p.table = append(p.table, s[len(rowPrefix):])
		return
	}
	if s == "END" {
		p.flush()
	}
	fmt.Println(s)
}

func (p *printer) flush() {
	if len(p.table) == 0 {
		return
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, row := range p.table {
		fmt.Fprintln(tw, "ROW . "+row)
	}
	tw.Flush()
	p.table = p.table[:0]
}

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "server address")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcq: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	fmt.Printf("connected to %s; type commands (QUIT to exit)\n", *addr)

	// Reader: print everything the server sends, aligning telemetry tables.
	go func() {
		var pr printer
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			pr.line(sc.Text())
		}
		pr.flush()
		fmt.Println("(connection closed)")
		os.Exit(0)
	}()

	in := bufio.NewScanner(os.Stdin)
	w := bufio.NewWriter(conn)
	for {
		fmt.Print("> ")
		if !in.Scan() {
			return
		}
		line := in.Text()
		if line == "" {
			continue
		}
		w.WriteString(line + "\n")
		w.Flush()
		if line == "QUIT" || line == "quit" {
			return
		}
	}
}
