// Command tcqd is the TelegraphCQ server daemon: it starts an engine and
// a postmaster (Fig. 4–5) and serves the line protocol documented in
// internal/server. With -demo it also creates the paper's
// ClosingStockPrices stream and feeds it from the synthetic stock
// workload, so clients can register queries immediately.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"telegraphcq/internal/core"
	"telegraphcq/internal/server"
	"telegraphcq/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address")
	eos := flag.Int("eos", 2, "execution objects (scheduler threads)")
	spool := flag.String("spool", "", "directory for stream spooling (empty = memory only)")
	demo := flag.Bool("demo", false, "create ClosingStockPrices and feed synthetic quotes")
	rate := flag.Int("rate", 100, "demo feed rate (tuples/second)")
	flag.Parse()

	engine := core.NewEngine(core.Options{EOs: *eos, SpoolDir: *spool})
	defer engine.Stop()

	pm, err := server.Listen(engine, *addr)
	if err != nil {
		log.Fatalf("tcqd: %v", err)
	}
	defer pm.Close()
	fmt.Printf("tcqd: listening on %s (EOs=%d spool=%q)\n", pm.Addr(), *eos, *spool)

	if *demo {
		if err := engine.CreateStream("ClosingStockPrices", workload.StockSchema(), 0); err != nil {
			log.Fatalf("tcqd: %v", err)
		}
		fmt.Println("tcqd: demo stream ClosingStockPrices(timestamp TIME, stockSymbol STRING, closingPrice FLOAT)")
		go func() {
			gen := workload.NewStockGenerator(time.Now().UnixNano(), nil)
			interval := time.Second / time.Duration(*rate)
			for {
				if err := engine.Feed("ClosingStockPrices", gen.Next()); err != nil {
					return
				}
				time.Sleep(interval)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("tcqd: shutting down")
}
