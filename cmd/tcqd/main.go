// Command tcqd is the TelegraphCQ server daemon: it starts an engine and
// a postmaster (Fig. 4–5) and serves the line protocol documented in
// internal/server. With -demo it also creates the paper's
// ClosingStockPrices stream and feeds it from the synthetic stock
// workload, so clients can register queries immediately.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/core"
	"telegraphcq/internal/eddy"
	"telegraphcq/internal/metrics"
	"telegraphcq/internal/server"
	"telegraphcq/internal/workload"
)

// clk is the wall clock, reached through chaos.Clock per the repo-wide
// clockcheck discipline.
var clk = chaos.Real()

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address")
	httpAddr := flag.String("http", "127.0.0.1:8088", "observability HTTP address serving /metrics (Prometheus text) and /debug/pprof (empty disables)")
	eos := flag.Int("eos", 2, "execution objects (scheduler threads)")
	spool := flag.String("spool", "", "directory for stream spooling (empty = memory only)")
	traceRate := flag.Float64("trace", 0, "tuple-lineage trace sample rate in [0,1] (0 disables; traces served via the TRACE command)")
	demo := flag.Bool("demo", false, "create ClosingStockPrices and feed synthetic quotes")
	rate := flag.Int("rate", 100, "demo feed rate (tuples/second)")
	workers := flag.Int("workers", 1, "parallel worker shards per eligible query (1 = sequential)")
	batch := flag.Int("batch", 64, "tuples per shard handoff batch in parallel execution")
	introspect := flag.Bool("introspect", false, "register the tcq.* introspection streams (query engine telemetry with ordinary CQs; enables live EXPLAIN <qid> and TOP)")
	introInterval := flag.Duration("introspect-interval", 250*time.Millisecond, "telemetry sampling period for the tcq.* streams")
	shared := flag.Bool("shared", false, "share arrangements: qualifying equijoins on the same stream pair reuse one SteM build across all registered CQs")
	columnar := flag.Bool("columnar", false, "columnar execution: eligible two-stream equijoin CQs run on struct-of-arrays blocks with arena allocation (zero-alloc hot path; requires workers=1 for the eligible queries)")
	policy := flag.String("policy", "", "engine-wide eddy routing policy: \"<kind> [seed=N] [every=N] [refresh=N] [order=a,b,c] [nway=on|off]\" with kinds lottery, naive, fixed, batching, fixing, selectivity; empty keeps the legacy per-query lottery. Also enables batch-granular N-way probe-order planning on 3+-stream joins unless nway=off. Individual queries can be re-routed live with SET POLICY <qid> <spec>")
	flag.Parse()

	var routing eddy.RoutingConfig
	if *policy != "" {
		cfg, err := eddy.ParseRouting(*policy)
		if err != nil {
			log.Fatalf("tcqd: -policy: %v", err)
		}
		routing = cfg
	}

	engine := core.NewEngine(core.Options{
		EOs:                *eos,
		SpoolDir:           *spool,
		TraceSampleRate:    *traceRate,
		Workers:            *workers,
		BatchSize:          *batch,
		Introspect:         *introspect,
		IntrospectInterval: *introInterval,
		SharedArrangements: *shared,
		Columnar:           *columnar,
		Routing:            routing,
	})
	defer engine.Stop()

	pm, err := server.Listen(engine, *addr)
	if err != nil {
		log.Fatalf("tcqd: %v", err)
	}
	defer pm.Close()
	fmt.Printf("tcqd: listening on %s (EOs=%d workers=%d batch=%d spool=%q trace=%g introspect=%v shared=%v columnar=%v)\n",
		pm.Addr(), *eos, *workers, *batch, *spool, *traceRate, *introspect, *shared, *columnar)
	if *introspect {
		fmt.Printf("tcqd: introspection streams tcq.stats tcq.routes tcq.pool tcq.chaos (every %s)\n",
			*introInterval)
	}
	if !routing.IsZero() {
		fmt.Printf("tcqd: routing policy %s\n", routing.String())
	}

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("tcqd: http: %v", err)
		}
		defer ln.Close()
		go func() {
			if err := http.Serve(ln, metrics.Handler(engine.Metrics())); err != nil {
				log.Printf("tcqd: http: %v", err)
			}
		}()
		fmt.Printf("tcqd: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", ln.Addr())
	}

	if *demo {
		if err := engine.CreateStream("ClosingStockPrices", workload.StockSchema(), 0); err != nil {
			log.Fatalf("tcqd: %v", err)
		}
		fmt.Println("tcqd: demo stream ClosingStockPrices(timestamp TIME, stockSymbol STRING, closingPrice FLOAT)")
		go func() {
			gen := workload.NewStockGenerator(clk.Now().UnixNano(), nil)
			interval := time.Second / time.Duration(*rate)
			for {
				if err := engine.Feed("ClosingStockPrices", gen.Next()); err != nil {
					return
				}
				clk.Sleep(interval)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("tcqd: shutting down")
}
