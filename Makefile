GO ?= go

.PHONY: check build test race vet bench chaos fuzz soak

check: ## vet + build + race tests + chaos campaign + fuzz smoke
	./scripts/check.sh

chaos: ## full 200-trial chaos campaign (CHAOS_SEED/CHAOS_TRIALS honoured)
	$(GO) test -count=1 -run 'TestChaos' ./internal/chaos/

fuzz: ## longer fuzz pass over the SQL and window-spec parsers
	$(GO) test -fuzz=FuzzParse -fuzztime=60s -run '^$$' ./internal/sql/
	$(GO) test -fuzz=FuzzParseLoop -fuzztime=60s -run '^$$' ./internal/window/

soak: ## 10k-tuple full-pipeline soak under a fixed chaos seed
	$(GO) test -count=1 -run 'TestChaosSoakFullPipeline' ./internal/chaos/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench: ## run the experiment harness, JSON report included
	$(GO) run ./cmd/tcqbench -json bench-report.json
