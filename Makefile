GO ?= go

.PHONY: check build test race vet bench

check: ## vet + build + race-detector test suite
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench: ## run the experiment harness, JSON report included
	$(GO) run ./cmd/tcqbench -json bench-report.json
