#!/bin/sh
# check.sh — the repo's one-command verification gate: vet, build, the
# full test suite under the race detector, a reduced-trial chaos campaign
# under race, and a short fuzz smoke pass over the parsers.
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The in-suite campaigns already ran above at their default trial counts;
# this stage re-runs them race-instrumented with fewer trials and a fresh
# cache so failover interleavings are exercised under the race detector on
# every invocation.
echo "==> chaos campaign under race (CHAOS_TRIALS=25)"
CHAOS_TRIALS=25 go test -race -count=1 -run 'TestChaosCampaign' ./internal/chaos/

echo "==> fuzz smoke (5s per target)"
go test -fuzz=FuzzParse -fuzztime=5s -run '^$' ./internal/sql/
go test -fuzz=FuzzParseLoop -fuzztime=5s -run '^$' ./internal/window/

echo "check: OK"
