#!/bin/sh
# check.sh — the repo's verification gate, split into named stages so CI
# failures are attributable at a glance:
#
#   check.sh lint    docs/gofmt/vet, tcqlint incl. -ignores audit (blocking),
#                    staticcheck (blocking when TCQ_REQUIRE_STATICCHECK=1)
#   check.sh test    build + full test suite, arrangement coverage floor
#   check.sh race    race-instrumented suite, chaos campaign, E13 workload, fuzz smoke
#   check.sh bench   bench smoke: E15 introspection + E16 shared-arrangement +
#                    E17 columnar zero-alloc + E18 adaptive N-way ordering gates
#   check.sh [all]   every stage in order
set -eu
cd "$(dirname "$0")/.."

stage_lint() {
    echo "==> godoc coverage (every package documents itself)"
    missing=0
    for dir in internal/*/; do
        pkg=$(basename "$dir")
        if ! grep -qE "^// Package $pkg " "$dir"*.go 2>/dev/null; then
            echo "no '// Package $pkg ...' comment in $dir" >&2
            missing=1
        fi
    done
    grep -qE "^// Package telegraphcq " ./*.go || {
        echo "no '// Package telegraphcq ...' comment in the root package" >&2
        missing=1
    }
    for dir in cmd/*/; do
        c=$(basename "$dir")
        if ! grep -qE "^// Command $c " "$dir"*.go 2>/dev/null; then
            echo "no '// Command $c ...' comment in $dir" >&2
            missing=1
        fi
    done
    [ "$missing" -eq 0 ] || exit 1

    echo "==> gofmt"
    unformatted=$(gofmt -l .)
    if [ -n "$unformatted" ]; then
        echo "gofmt needed on:" >&2
        echo "$unformatted" >&2
        exit 1
    fi

    echo "==> go vet ./..."
    go vet ./...

    # The -ignores audit runs the full eight-analyzer suite (clock, pool,
    # owner, alloc, chan, lineage, metrics, lock order), prints any live
    # findings, and additionally fails on stale //lint:ignore directives —
    # suppressions whose excused code has since been fixed or deleted.
    # The ledger lands in reports/ so CI can attach it on failure.
    echo "==> tcqlint -ignores ./... (engine invariants + suppression audit)"
    mkdir -p reports
    if go run ./cmd/tcqlint -ignores ./... > reports/tcqlint.txt 2>&1; then
        grep -c '^' reports/tcqlint.txt | xargs -I{} echo "    {} ledger line(s) in reports/tcqlint.txt"
    else
        cat reports/tcqlint.txt >&2
        exit 1
    fi

    if command -v staticcheck >/dev/null 2>&1; then
        echo "==> staticcheck ./..."
        staticcheck ./...
    elif [ "${TCQ_REQUIRE_STATICCHECK:-0}" = "1" ]; then
        echo "staticcheck required (TCQ_REQUIRE_STATICCHECK=1) but not installed" >&2
        exit 1
    else
        echo "==> staticcheck not installed; skipping (CI installs a pinned version and sets TCQ_REQUIRE_STATICCHECK=1)"
    fi
}

stage_test() {
    echo "==> go build ./..."
    go build ./...

    echo "==> go test ./..."
    go test ./...

    # The arrangement layer is the engine's shared-state backbone: one
    # writer, many cursors, epoch-deferred frees. Hold its line coverage to
    # a floor so the cursor/epoch protocol never drifts out from under its
    # tests.
    echo "==> coverage floor: internal/arrange >= 85%"
    profile=$(mktemp)
    go test -coverprofile="$profile" ./internal/arrange/ > /dev/null
    cov=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    rm -f "$profile"
    echo "    internal/arrange coverage: ${cov}%"
    if awk -v c="$cov" 'BEGIN { exit !(c < 85) }'; then
        echo "internal/arrange coverage ${cov}% is below the 85% floor" >&2
        exit 1
    fi
}

stage_race() {
    echo "==> go test -race ./..."
    go test -race ./...

    # The in-suite campaigns already ran above at their default trial
    # counts; this stage re-runs them race-instrumented with fewer trials
    # and a fresh cache so failover interleavings are exercised under the
    # race detector on every invocation.
    echo "==> chaos campaign under race (CHAOS_TRIALS=25)"
    CHAOS_TRIALS=25 go test -race -count=1 -run 'TestChaosCampaign' ./internal/chaos/

    # The parallel partitioned-eddy layer is all goroutine handoff (driver ->
    # shard queues -> workers -> merge), so run its bench workload — worker
    # counts up to 8 — race-instrumented end to end.
    echo "==> parallel partitioned-eddy workload under race (E13)"
    go run -race ./cmd/tcqbench -exp E13 > /dev/null

    echo "==> fuzz smoke (5s per target)"
    go test -fuzz=FuzzParse -fuzztime=5s -run '^$' ./internal/sql/
    go test -fuzz=FuzzParseLoop -fuzztime=5s -run '^$' ./internal/window/
}

stage_bench() {
    # Smoke-sized E15 with the strict gate on: fails the build when idle
    # introspection (tcq.* streams registered, nobody subscribed) costs the
    # hot path more than 5% throughput.
    echo "==> bench smoke: E15 introspection-overhead gate (strict, -short)"
    TCQ_BENCH_STRICT=1 go test -count=1 -short -run TestE15IntrospectionOverhead ./internal/bench/

    # Smoke-sized E16 with the strict gate on: fails the build when 10x the
    # registered overlapping CQs costs 5x+ per-tuple time or 8x+ resident
    # memory — i.e. when the shared arrangement stops amortizing.
    echo "==> bench smoke: E16 shared-arrangements scaling gate (strict, -short)"
    TCQ_BENCH_STRICT=1 go test -count=1 -short -run TestE16SharedArrangementsScaling ./internal/bench/

    # Smoke-sized E17 with the strict gate on: fails the build when the
    # columnar runtime's steady-state allocation rate rises above 1.0
    # allocs per fed tuple on the equijoin workload, or stops beating the
    # row-at-a-time runtime — i.e. when the zero-alloc hot path regresses.
    echo "==> bench smoke: E17 columnar zero-alloc gate (strict, -short)"
    TCQ_BENCH_STRICT=1 go test -count=1 -short -run TestE17ColumnarZeroAlloc ./internal/bench/

    # Smoke-sized E18 with the strict gate on: fails the build when the
    # adaptive probe-order planner stops beating every static join order
    # on the drifting-selectivity star join — i.e. when batch-granular
    # re-planning no longer pays for itself after a mid-run shift.
    echo "==> bench smoke: E18 adaptive N-way ordering gate (strict, -short)"
    TCQ_BENCH_STRICT=1 go test -count=1 -short -run TestE18NWayAdaptiveGate ./internal/bench/
}

stage="${1:-all}"
case "$stage" in
lint) stage_lint ;;
test) stage_test ;;
race) stage_race ;;
bench) stage_bench ;;
all)
    stage_lint
    stage_test
    stage_race
    stage_bench
    ;;
*)
    echo "usage: check.sh [lint|test|race|bench|all]" >&2
    exit 2
    ;;
esac

echo "check ($stage): OK"
