// Distributed: the §4.3 roadmap item — the shared CQ engine scaled out by
// Flux. A co-partitioned join query and a bundle of selection queries run
// across a simulated 4-node cluster; killing a node mid-stream loses
// nothing because process pairs keep shadow state.
package main

import (
	"fmt"
	"time"

	"telegraphcq/internal/cacq"
	"telegraphcq/internal/cluster"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

func main() {
	layout := tuple.NewLayout(
		tuple.NewSchema("orders",
			tuple.Column{Name: "cust", Kind: tuple.KindInt},
			tuple.Column{Name: "amount", Kind: tuple.KindInt}),
		tuple.NewSchema("payments",
			tuple.Column{Name: "cust", Kind: tuple.KindInt},
			tuple.Column{Name: "paid", Kind: tuple.KindInt}),
	)

	p, err := cluster.New(cluster.Config{
		Nodes:        4,
		Buckets:      32,
		Layout:       layout,
		PartitionCol: 0, // orders.cust; payments co-partition on their cust
		Joins: []cacq.JoinSpec{{
			StreamA: 0, StreamB: 1, ColA: 0, ColB: 2, TimeKind: window.Logical,
		}},
		Replicate: true,
	})
	if err != nil {
		panic(err)
	}
	defer p.Close()

	// Q0: the full orders⋈payments join per customer.
	join, _ := p.AddQuery(3, nil, nil)
	// Q1: large orders only (selection, shared grouped filter per node).
	big, _ := p.AddQuery(1, []expr.Predicate{
		{Col: 1, Op: expr.Gt, Val: tuple.Int(900)},
	}, nil)

	feed := func(n int) {
		for i := 0; i < n; i++ {
			cust := int64(i % 100)
			p.Ingest(0, tuple.New(tuple.Int(cust), tuple.Int(int64(i%1000))))
			if i%2 == 0 {
				p.Ingest(1, tuple.New(tuple.Int(cust), tuple.Int(1)))
			}
		}
	}
	feed(10000)
	p.WaitIdle(10 * time.Second)
	fmt.Printf("after 10k orders + 5k payments across 4 nodes:\n")
	fmt.Printf("  join results:   %d\n", p.Delivered(join))
	fmt.Printf("  big orders:     %d\n", p.Delivered(big))
	fmt.Printf("  node loads:     %v\n", p.Flux().Loads())

	fmt.Println("killing node 1 mid-stream ...")
	p.Fail(1)
	feed(10000)
	if !p.WaitIdle(10 * time.Second) {
		panic("cluster wedged")
	}
	st := p.Flux().Stats()
	fmt.Printf("  failovers=%d lost=%d; join results now %d, big orders %d\n",
		st.Failovers, st.LostBuckets, p.Delivered(join), p.Delivered(big))
}
