// Stocks: the paper's §4.1 windowed queries, run verbatim over a
// deterministic ClosingStockPrices stream. Demonstrates snapshot,
// landmark, sliding, and self-join windows expressed with the for-loop /
// WindowIs construct, and the output-as-a-sequence-of-sets semantics
// (each result row is tagged with its window instance).
package main

import (
	"fmt"

	"telegraphcq"
)

func main() {
	db := telegraphcq.Open(telegraphcq.Config{})
	defer db.Close()
	db.MustCreateStream("ClosingStockPrices",
		"timestamp TIME, stockSymbol STRING, closingPrice FLOAT", "timestamp")

	// Example 2 (landmark): "all days after the 10th trading day on
	// which MSFT closed above 25; stand for 10 days."
	landmark, err := db.Register(`
		SELECT closingPrice, timestamp
		FROM ClosingStockPrices
		WHERE stockSymbol = 'MSFT' AND closingPrice > 25.00
		for (t = 11; t <= 20; t++) { WindowIs(ClosingStockPrices, 11, t); }`)
	if err != nil {
		panic(err)
	}

	// Example 3 (sliding): 5-day moving average of MSFT.
	sliding, err := db.Register(`
		SELECT AVG(closingPrice)
		FROM ClosingStockPrices
		WHERE stockSymbol = 'MSFT'
		for (t = 5; t <= 20; t++) { WindowIs(ClosingStockPrices, t - 4, t); }`)
	if err != nil {
		panic(err)
	}

	// Example 4 (self-join): which stocks beat MSFT on the same day,
	// over a 3-day window?
	beat, err := db.Register(`
		SELECT c2.stockSymbol, c2.timestamp
		FROM ClosingStockPrices AS c1, ClosingStockPrices AS c2
		WHERE c1.stockSymbol = 'MSFT' AND c2.stockSymbol <> 'MSFT'
		AND c2.closingPrice > c1.closingPrice AND c2.timestamp = c1.timestamp
		for (t = 3; t <= 6; t++) { WindowIs(c1, t - 2, t); WindowIs(c2, t - 2, t); }`)
	if err != nil {
		panic(err)
	}

	// Deterministic trading days: MSFT walks 20 + day, IBM flat at 30,
	// ORCL walks 22 + day/2.
	for day := 1; day <= 22; day++ {
		db.Feed("ClosingStockPrices", day, "MSFT", 20+float64(day))
		db.Feed("ClosingStockPrices", day, "IBM", 30.0)
		db.Feed("ClosingStockPrices", day, "ORCL", 22+float64(day)/2)
	}

	landmark.Wait()
	sliding.Wait()
	beat.Wait()

	rows, _ := landmark.Cursor().Fetch()
	fmt.Printf("landmark query produced %d rows; last: price=%.1f day=%d\n",
		len(rows), rows[len(rows)-1].Float(0), rows[len(rows)-1].Int(1))

	rows, _ = sliding.Cursor().Fetch()
	fmt.Println("5-day moving average of MSFT:")
	for _, r := range rows {
		fmt.Printf("  day %2d: %.2f\n", r.T, r.Float(0))
	}

	rows, _ = beat.Cursor().Fetch()
	fmt.Printf("stocks beating MSFT (3-day windows): %d rows\n", len(rows))
	for _, r := range rows[:min(4, len(rows))] {
		fmt.Printf("  window@%d: %s on day %d\n", r.T, r.String_(0), r.Int(1))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
