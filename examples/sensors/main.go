// Sensors: the sensor-proxy control loop of §2.1 — an ingress wrapper
// that adjusts the sensor network's sample rate based on the standing
// queries, combined with windowed aggregation over the readings.
package main

import (
	"fmt"
	"io"

	"telegraphcq"
	"telegraphcq/internal/ingress"
	"telegraphcq/internal/workload"
)

func main() {
	db := telegraphcq.Open(telegraphcq.Config{})
	defer db.Close()
	db.MustCreateStream("readings", "ts TIME, sensor INT, temp FLOAT, volt FLOAT", "ts")

	// The proxy wraps a simulated sensor network (4 sensors) idling at 1
	// sample per tick.
	proxy := ingress.NewSensorProxy(workload.NewSensorGenerator(7, 4, 1), 1)
	fmt.Printf("sensor network idle sample rate: %d/tick\n", proxy.Rate())

	// A coarse monitoring query is content with the idle rate; a new
	// high-resolution query demands more, and the proxy pushes a control
	// message into the network (the adaptivity control loop).
	coarse, err := db.Register(`
		SELECT sensor, AVG(temp)
		FROM readings
		GROUP BY sensor
		for (t = 10; t <= 30; t += 10) { WindowIs(readings, t - 9, t); }`)
	if err != nil {
		panic(err)
	}
	proxy.Demand(coarse.ID(), 1)

	fine, err := db.Register(`SELECT temp FROM readings WHERE sensor = 2 AND temp > 20`)
	if err != nil {
		panic(err)
	}
	proxy.Demand(fine.ID(), 8)
	fmt.Printf("after high-res query registers: %d/tick (control message sent)\n", proxy.Rate())

	// Pump 30 ticks of readings from the proxy into the engine.
	fed := 0
	for tick := 0; tick < 30; tick++ {
		for {
			r, err := proxy.Next()
			if err == io.EOF {
				break
			}
			db.Feed("readings", r.Vals[0].AsInt(), r.Vals[1].AsInt(),
				r.Vals[2].AsFloat(), r.Vals[3].AsFloat())
			fed++
			if r.Vals[0].AsInt() >= int64(tick+1) {
				break
			}
		}
	}
	coarse.Wait()

	rows, _ := coarse.Cursor().Fetch()
	fmt.Printf("fed %d readings; per-sensor window averages (%d rows):\n", fed, len(rows))
	for _, r := range rows[:min(6, len(rows))] {
		fmt.Printf("  window@%d sensor=%d avg=%.2f\n", r.T, r.Int(0), r.Float(1))
	}
	fmt.Printf("high-res matches: %d\n", fine.Results())

	// The fine query leaves; the proxy tunes the network back down.
	fine.Deregister()
	proxy.Release(fine.ID())
	fmt.Printf("after high-res query leaves: %d/tick\n", proxy.Rate())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
