// Quickstart: open an embedded TelegraphCQ engine, declare a stream,
// register a continuous query, and stream results while data arrives.
package main

import (
	"fmt"

	"telegraphcq"
)

func main() {
	db := telegraphcq.Open(telegraphcq.Config{})
	defer db.Close()

	// A stream of stock quotes; "ts" carries the application timestamp.
	db.MustCreateStream("quotes", "ts TIME, sym STRING, price FLOAT", "ts")

	// A standing continuous query: every arriving tuple is routed
	// through the adaptive eddy; matches stream out immediately.
	q, err := db.Register(`SELECT price FROM quotes WHERE sym = 'MSFT' AND price > 30`)
	if err != nil {
		panic(err)
	}
	rows := q.Subscribe(64)

	quotes := []struct {
		ts    int
		sym   string
		price float64
	}{
		{1, "MSFT", 28.10},
		{1, "IBM", 91.30},
		{2, "MSFT", 31.75},
		{3, "MSFT", 33.20},
		{3, "ORCL", 12.85},
	}
	for _, qt := range quotes {
		if err := db.Feed("quotes", qt.ts, qt.sym, qt.price); err != nil {
			panic(err)
		}
	}

	fmt.Println("MSFT prices above 30:")
	for i := 0; i < 2; i++ {
		r := <-rows
		fmt.Printf("  %.2f\n", r.Float(0))
	}
}
