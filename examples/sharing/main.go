// Sharing: CACQ-style shared execution (§3.1). Five hundred standing
// range queries over one stream execute as a single disjunctive
// super-query: grouped filters evaluate all factors in one indexed pass
// per tuple, and tuple-lineage bitmaps track which queries each tuple
// still satisfies. The same workload run per-query shows the cost of not
// sharing.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"telegraphcq/internal/baseline"
	"telegraphcq/internal/cacq"
	"telegraphcq/internal/chaos"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// clk is the wall clock, reached through chaos.Clock per the repo-wide
// clockcheck discipline.
var clk = chaos.Real()

func main() {
	const queries = 500
	const tuples = 50000

	layout := tuple.NewLayout(tuple.NewSchema("quotes",
		tuple.Column{Name: "sym", Kind: tuple.KindInt},
		tuple.Column{Name: "price", Kind: tuple.KindInt}))

	rng := rand.New(rand.NewSource(2))
	shared, err := cacq.New(layout, nil, nil)
	if err != nil {
		panic(err)
	}
	var conjs []expr.Conjunction
	delivered := make([]int64, queries)
	for q := 0; q < queries; q++ {
		lo := int64(rng.Intn(900))
		conj := expr.Conjunction{
			{Col: 0, Op: expr.Eq, Val: tuple.Int(int64(rng.Intn(8)))},
			{Col: 1, Op: expr.Ge, Val: tuple.Int(lo)},
			{Col: 1, Op: expr.Le, Val: tuple.Int(lo + 50)},
		}
		conjs = append(conjs, conj)
		qi := q
		if _, err := shared.AddQuery(1, []expr.Predicate(conj), nil,
			func(*tuple.Tuple) { delivered[qi]++ }); err != nil {
			panic(err)
		}
	}
	perQuery := baseline.NewPerQuery(conjs)

	input := make([]*tuple.Tuple, tuples)
	for i := range input {
		input[i] = tuple.New(
			tuple.Int(int64(rng.Intn(8))),
			tuple.Int(int64(rng.Intn(1000))))
	}

	start := clk.Now()
	for _, t := range input {
		shared.Ingest(0, t)
	}
	sharedTime := clk.Since(start)

	start = clk.Now()
	var refMatches int64
	for _, t := range input {
		refMatches += int64(perQuery.Process(t).Count())
	}
	perQueryTime := clk.Since(start)

	var total int64
	for _, d := range delivered {
		total += d
	}
	fmt.Printf("%d standing queries, %d tuples\n", queries, tuples)
	fmt.Printf("  shared (CACQ):  %8s  %d results, %d module visits\n",
		sharedTime.Round(time.Millisecond), total, shared.Stats().Visits)
	fmt.Printf("  per-query:      %8s  %d results, %d predicate evals\n",
		perQueryTime.Round(time.Millisecond), refMatches, perQuery.Evals)
	if total != refMatches {
		panic("shared and per-query disagree!")
	}
	fmt.Printf("  speedup: %.1fx with identical results\n",
		perQueryTime.Seconds()/sharedTime.Seconds())
}
