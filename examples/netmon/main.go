// Netmon: the network-monitoring scenario the paper's introduction
// motivates. A packet stream is watched by several standing queries at
// once — a heavy-hitter report over hopping windows, a watchlist join
// against a static table, and a port filter — all sharing the engine.
package main

import (
	"fmt"

	"telegraphcq"
	"telegraphcq/internal/workload"
)

func main() {
	db := telegraphcq.Open(telegraphcq.Config{})
	defer db.Close()

	db.MustCreateStream("packets", "ts TIME, src INT, dst INT, port INT, bytes INT", "ts")
	if err := db.CreateTable("watchlist", "host INT, reason STRING"); err != nil {
		panic(err)
	}
	// Hosts under observation.
	db.Feed("watchlist", 7, "bruteforce")
	db.Feed("watchlist", 13, "exfil")

	// Q1: per-source byte counts over 100-tick hopping windows.
	heavy, err := db.Register(`
		SELECT src, SUM(bytes), COUNT(*)
		FROM packets
		GROUP BY src
		for (t = 100; t <= 300; t += 100) { WindowIs(packets, t - 99, t); }`)
	if err != nil {
		panic(err)
	}

	// Q2: continuous join against the watchlist table (unwindowed CQ —
	// every packet from a watched host is reported as it arrives).
	watched, err := db.Register(`
		SELECT packets.src, watchlist.reason, packets.bytes
		FROM packets, watchlist
		WHERE packets.src = watchlist.host`)
	if err != nil {
		panic(err)
	}
	alerts := watched.Subscribe(1024)

	// Q3: a simple port filter sharing the same stream.
	dns, err := db.Register(`SELECT src FROM packets WHERE port = 53`)
	if err != nil {
		panic(err)
	}

	// Drive 300 ticks of Zipf-skewed traffic.
	gen := workload.NewPacketGenerator(42, 50, 0.9)
	for i := 0; i < 300; i++ {
		p := gen.Next()
		db.Feed("packets",
			int(p.Vals[0].AsInt()), p.Vals[1].AsInt(), p.Vals[2].AsInt(),
			p.Vals[3].AsInt(), p.Vals[4].AsInt())
	}
	heavy.Wait()

	rows, _ := heavy.Cursor().Fetch()
	fmt.Printf("heavy hitters: %d (src, bytes, packets) rows across 3 windows\n", len(rows))
	top := 0
	for _, r := range rows[:min(5, len(rows))] {
		fmt.Printf("  window@%d src=%d bytes=%d pkts=%d\n", r.T, r.Int(0), r.Int(1), r.Int(2))
		top++
	}

	n := 0
	fmt.Println("watchlist alerts (first few):")
drain:
	for n < 3 {
		select {
		case a := <-alerts:
			fmt.Printf("  src=%d reason=%s bytes=%d\n", a.Int(0), a.String_(1), a.Int(2))
			n++
		default:
			break drain
		}
	}
	fmt.Printf("dns queries matched so far: %d\n", dns.Results())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
