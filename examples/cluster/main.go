// Cluster: Flux (§2.4) on a simulated shared-nothing cluster — a
// partitioned streaming aggregate under heavy key skew, rebalanced online
// while the stream keeps flowing, then surviving a machine failure via
// process-pair replication.
package main

import (
	"fmt"
	"time"

	"telegraphcq/internal/flux"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

func main() {
	f := flux.New(flux.Config{
		Nodes:     4,
		Buckets:   64,
		KeyCol:    0,
		Replicate: true,
	}, flux.NewGroupCount(0, 1))
	defer f.Close()

	gen := workload.NewPacketGenerator(11, 2000, 1.0) // Zipf-skewed hosts
	feed := func(n int) {
		for i := 0; i < n; i++ {
			p := gen.Next()
			f.Route(tuple.New(p.Vals[1], tuple.Int(p.Vals[4].AsInt())))
		}
	}

	feed(30000)
	f.WaitIdle(10 * time.Second)
	fmt.Printf("after 30k skewed tuples, per-node load: %v\n", f.Loads())

	moves := f.Rebalance(1.25)
	fmt.Printf("online repartitioning moved %d buckets\n", moves)

	feed(30000)
	f.WaitIdle(10 * time.Second)
	fmt.Printf("after 30k more, per-node load:          %v\n", f.Loads())

	fmt.Println("killing node 0 ...")
	f.Fail(0)
	feed(10000)
	if !f.WaitIdle(10 * time.Second) {
		panic("cluster wedged after failure")
	}
	st := f.Stats()
	fmt.Printf("failovers=%d lostBuckets=%d — processing continued without intervention\n",
		st.Failovers, st.LostBuckets)
	fmt.Printf("total routed: %d; per-node processed: %v\n", st.Routed, st.NodeProcessed)
}
