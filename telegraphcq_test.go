package telegraphcq

import (
	"testing"
	"time"

	"telegraphcq/internal/chaos"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{})
	t.Cleanup(db.Close)
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := openDB(t)
	db.MustCreateStream("quotes", "ts TIME, sym STRING, price FLOAT", "ts")
	q, err := db.Register(`SELECT price FROM quotes WHERE sym = 'MSFT'`)
	if err != nil {
		t.Fatal(err)
	}
	rows := q.Subscribe(16)
	if err := db.Feed("quotes", 1, "MSFT", 57.25); err != nil {
		t.Fatal(err)
	}
	if err := db.Feed("quotes", 1, "IBM", 99.0); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-rows:
		if r.Float(0) != 57.25 {
			t.Errorf("price = %v", r.Float(0))
		}
	case <-chaos.Real().After(5 * time.Second):
		t.Fatal("no result")
	}
}

func TestCursorFetch(t *testing.T) {
	db := openDB(t)
	db.MustCreateStream("s", "x INT", "")
	q, err := db.Register(`SELECT x FROM s WHERE x > 2`)
	if err != nil {
		t.Fatal(err)
	}
	cur := q.Cursor()
	for i := 1; i <= 5; i++ {
		if err := db.Feed("s", i); err != nil {
			t.Fatal(err)
		}
	}
	deadline := chaos.Real().Now().Add(5 * time.Second)
	var got []Row
	for len(got) < 3 && chaos.Real().Now().Before(deadline) {
		rows, err := cur.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rows...)
		chaos.Real().Sleep(time.Millisecond)
	}
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0].Int(0) != 3 {
		t.Errorf("first = %d", got[0].Int(0))
	}
}

func TestWindowedAggregateAPI(t *testing.T) {
	db := openDB(t)
	db.MustCreateStream("quotes", "ts TIME, sym STRING, price FLOAT", "ts")
	q, err := db.Register(`SELECT AVG(price) FROM quotes
		for (t = 3; t <= 5; t++) { WindowIs(quotes, t - 2, t); }`)
	if err != nil {
		t.Fatal(err)
	}
	for day := 1; day <= 7; day++ {
		db.Feed("quotes", day, "MSFT", float64(day))
	}
	q.Wait()
	rows, err := q.Cursor().Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("instances = %d", len(rows))
	}
	// Window [t-2, t] over prices equal to day: avg = t-1; rows tagged
	// with the instance value.
	for _, r := range rows {
		if r.Float(0) != float64(r.T-1) {
			t.Errorf("instance %d avg = %v", r.T, r.Float(0))
		}
	}
}

func TestFeedValidation(t *testing.T) {
	db := openDB(t)
	db.MustCreateStream("s", "x INT, name STRING", "")
	if err := db.Feed("s", 1); err == nil {
		t.Error("short row accepted")
	}
	if err := db.Feed("s", "no", "way"); err == nil {
		t.Error("string for INT accepted")
	}
	if err := db.Feed("s", 1, 2); err == nil {
		t.Error("int for STRING accepted")
	}
	if err := db.Feed("nope", 1); err == nil {
		t.Error("unknown stream accepted")
	}
	if err := db.FeedCSV("s", "1,alice"); err != nil {
		t.Error(err)
	}
}

func TestCreateStreamValidation(t *testing.T) {
	db := openDB(t)
	if err := db.CreateStream("s", "x WAT", ""); err == nil {
		t.Error("bad type accepted")
	}
	if err := db.CreateStream("s", "x INT", "nope"); err == nil {
		t.Error("bad time column accepted")
	}
	if err := db.CreateTable("t", "x INT"); err != nil {
		t.Error(err)
	}
}

func TestServeAndDial(t *testing.T) {
	db := openDB(t)
	srv, err := db.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateStream("s", "x INT", ""); err != nil {
		t.Fatal(err)
	}
	qid, err := c.Query(`SELECT x FROM s`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Feed("s", "7"); err != nil {
		t.Fatal(err)
	}
	deadline := chaos.Real().Now().Add(5 * time.Second)
	for chaos.Real().Now().Before(deadline) {
		rows, err := c.Fetch(qid)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 1 && rows[0] == "7" {
			return
		}
		chaos.Real().Sleep(time.Millisecond)
	}
	t.Fatal("row never arrived over the wire")
}

func TestRowString(t *testing.T) {
	db := openDB(t)
	db.MustCreateStream("s", "x INT, name STRING", "")
	q, _ := db.Register(`SELECT x, name FROM s`)
	cur := q.Cursor()
	db.Feed("s", 7, "alice")
	deadline := chaos.Real().Now().Add(5 * time.Second)
	for chaos.Real().Now().Before(deadline) {
		rows, _ := cur.Fetch()
		if len(rows) == 1 {
			if rows[0].String() != "7,alice" {
				t.Errorf("row = %q", rows[0].String())
			}
			if rows[0].Len() != 2 || rows[0].String_(1) != "alice" {
				t.Errorf("accessors wrong: %v", rows[0])
			}
			return
		}
		chaos.Real().Sleep(time.Millisecond)
	}
	t.Fatal("timed out")
}

func TestSubscribePriority(t *testing.T) {
	db := openDB(t)
	db.MustCreateStream("s", "x INT, urgency FLOAT", "")
	q, err := db.Register(`SELECT x, urgency FROM s`)
	if err != nil {
		t.Fatal(err)
	}
	pq := q.SubscribePriority(16, func(r Row) float64 { return r.Float(1) })
	for i, u := range []float64{0.1, 0.9, 0.5, 0.7, 0.3} {
		db.Feed("s", i, u)
	}
	deadline := chaos.Real().Now().Add(5 * time.Second)
	for q.Results() < 5 && chaos.Real().Now().Before(deadline) {
		chaos.Real().Sleep(time.Millisecond)
	}
	rows := pq.Drain(0)
	if len(rows) != 5 {
		t.Fatalf("drained %d", len(rows))
	}
	// Most urgent first.
	want := []float64{0.9, 0.7, 0.5, 0.3, 0.1}
	for i := range want {
		if rows[i].Float(1) != want[i] {
			t.Fatalf("priority order = %v", rows)
		}
	}
	if emitted, _ := pq.Stats(); emitted != 5 {
		t.Errorf("emitted = %d", emitted)
	}
}
