// Package-level benchmarks: one testing.B benchmark per experiment in
// DESIGN.md §4 (E1–E12), measuring the per-operation cost of each
// experiment's hot path. The full parameter sweeps (the "tables") are
// produced by cmd/tcqbench; these benches regenerate each table's core
// series under `go test -bench`.
package telegraphcq

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"telegraphcq/internal/baseline"
	"telegraphcq/internal/cacq"
	"telegraphcq/internal/eddy"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/flux"
	"telegraphcq/internal/gfilter"
	"telegraphcq/internal/ops"
	"telegraphcq/internal/psoup"
	"telegraphcq/internal/storage"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
	"telegraphcq/internal/workload"
)

// BenchmarkE1FjordPipeline measures tuple transfer through a pull-queue
// Fjord connection (E1).
func BenchmarkE1FjordPipeline(b *testing.B) {
	for _, capacity := range []int{64, 1024} {
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			src := fjord.NewConn(fjord.Pull, capacity)
			ident := fjord.Transform(func(t *tuple.Tuple) []*tuple.Tuple {
				return []*tuple.Tuple{t}
			})
			out := fjord.Pipeline(src, fjord.Pull, capacity, ident)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					if _, ok := out.Recv(); !ok {
						if out.Drained() {
							return
						}
					}
				}
			}()
			t := tuple.New(tuple.Int(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Send(t)
			}
			src.Close()
			<-done
		})
	}
}

func driftEddy(policy eddy.Policy) (*eddy.Eddy, *tuple.Layout) {
	l := tuple.NewLayout(workload.DriftSchema())
	fA := ops.NewFilter("A", l, expr.Predicate{Col: 0, Op: expr.Lt, Val: tuple.Int(10)})
	fB := ops.NewFilter("B", l, expr.Predicate{Col: 1, Op: expr.Lt, Val: tuple.Int(10)})
	return eddy.New(tuple.SingleSource(0), policy, nil, fA, fB), l
}

// BenchmarkE2EddyVsStatic measures per-tuple routing cost of adaptive vs
// static plans on the drift workload (E2).
func BenchmarkE2EddyVsStatic(b *testing.B) {
	cases := []struct {
		name   string
		policy func() eddy.Policy
	}{
		{"static", func() eddy.Policy { return eddy.NewFixedPolicy(0, 1) }},
		{"lottery", func() eddy.Policy { return eddy.NewLotteryPolicy(7) }},
		{"batched64", func() eddy.Policy {
			return eddy.NewBatchingPolicy(eddy.NewLotteryPolicy(7), 64)
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			e, l := driftEddy(c.policy())
			gen := workload.NewDriftGenerator(42, 1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Ingest(l.Widen(0, gen.Next()))
			}
		})
	}
}

// BenchmarkE3HybridJoin measures symmetric-join probe cost through SteMs
// (the latency-free leg of E3).
func BenchmarkE3HybridJoin(b *testing.B) {
	l := tuple.NewLayout(
		tuple.NewSchema("S", tuple.Column{Name: "k", Kind: tuple.KindInt}),
		tuple.NewSchema("T", tuple.Column{Name: "k", Kind: tuple.KindInt}),
	)
	modS, modT := ops.BuildSteMPair(l, 0, 1, 0, 1, window.Logical)
	n := 0
	e := eddy.New(3, eddy.NewLotteryPolicy(1), func(*tuple.Tuple) { n++ }, modS, modT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream := i % 2
		t := l.Widen(stream, tuple.New(tuple.Int(int64(i%1024))))
		t.Seq = int64(i)
		e.Ingest(t)
	}
}

// BenchmarkE4PSoup measures PSoup insert (new data on old queries) and
// fetch (window imposition on materialized results) (E4).
func BenchmarkE4PSoup(b *testing.B) {
	build := func(nq int) *psoup.PSoup {
		p := psoup.New(workload.StockSchema(), window.Physical)
		rng := rand.New(rand.NewSource(5))
		for q := 0; q < nq; q++ {
			lo := rng.Float64() * 80
			p.Register(expr.Conjunction{
				{Col: 2, Op: expr.Ge, Val: tuple.Float(lo)},
				{Col: 2, Op: expr.Le, Val: tuple.Float(lo + 10)},
			}, 100)
		}
		return p
	}
	b.Run("insert1000q", func(b *testing.B) {
		p := build(1000)
		rng := rand.New(rand.NewSource(6))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := tuple.New(tuple.Time(int64(i)), tuple.String_("X"),
				tuple.Float(rng.Float64()*100))
			t.TS = int64(i)
			t.Seq = int64(i)
			p.Insert(t)
			if i%4096 == 0 {
				p.Evict(int64(i) - 200)
			}
		}
	})
	b.Run("fetchMaterialized", func(b *testing.B) {
		p := build(100)
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 10000; i++ {
			t := tuple.New(tuple.Time(int64(i)), tuple.String_("X"),
				tuple.Float(rng.Float64()*100))
			t.TS = int64(i)
			t.Seq = int64(i)
			p.Insert(t)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Fetch(i%100, 10000)
		}
	})
}

// BenchmarkE5SharedVsPerQuery measures per-tuple cost of shared vs
// per-query execution with 100 standing queries (E5).
func BenchmarkE5SharedVsPerQuery(b *testing.B) {
	layout := tuple.NewLayout(tuple.NewSchema("s",
		tuple.Column{Name: "sym", Kind: tuple.KindInt},
		tuple.Column{Name: "price", Kind: tuple.KindInt}))
	const nq = 100
	rng := rand.New(rand.NewSource(11))
	var conjs []expr.Conjunction
	shared, err := cacq.New(layout, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	for q := 0; q < nq; q++ {
		lo := int64(rng.Intn(90))
		conj := expr.Conjunction{
			{Col: 1, Op: expr.Ge, Val: tuple.Int(lo)},
			{Col: 1, Op: expr.Le, Val: tuple.Int(lo + 10)},
		}
		conjs = append(conjs, conj)
		shared.AddQuery(1, []expr.Predicate(conj), nil, nil)
	}
	perQuery := baseline.NewPerQuery(conjs)

	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shared.Ingest(0, tuple.New(tuple.Int(0), tuple.Int(int64(i%100))))
		}
	})
	b.Run("perQuery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			perQuery.Process(tuple.New(tuple.Int(0), tuple.Int(int64(i%100))))
		}
	})
}

// BenchmarkE6Flux measures routed throughput of the partitioned cluster,
// with and without replication (E6).
func BenchmarkE6Flux(b *testing.B) {
	for _, repl := range []bool{false, true} {
		b.Run(fmt.Sprintf("replicate=%v", repl), func(b *testing.B) {
			f := flux.New(flux.Config{Nodes: 4, Buckets: 64, KeyCol: 0, Replicate: repl},
				flux.NewGroupCount(0, -1))
			defer f.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Route(tuple.New(tuple.Int(int64(i % 1000))))
			}
			f.WaitIdle(30 * time.Second)
		})
	}
}

// BenchmarkE7WindowInstance measures evaluation of one sliding-window
// instance (gather + filter + aggregate) on the window buffer (E7).
func BenchmarkE7WindowInstance(b *testing.B) {
	buf := window.NewBuffer(window.Physical)
	gen := workload.NewStockGenerator(1, nil)
	for i := 0; i < 100000; i++ {
		buf.Add(gen.Next())
	}
	agg := ops.NewAggregator(nil, ops.AggSpec{Fn: ops.Avg, Col: 2})
	maxT, _ := buf.MaxTime()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		left := maxT - 100 - int64(i%50)
		rows := buf.Range(left, left+100)
		agg.Compute(rows)
	}
}

// BenchmarkE8Batching measures routing overhead as the batching knob
// sweeps (E8).
func BenchmarkE8Batching(b *testing.B) {
	for _, batch := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			var p eddy.Policy = eddy.NewLotteryPolicy(7)
			if batch > 1 {
				p = eddy.NewBatchingPolicy(eddy.NewLotteryPolicy(7), batch)
			}
			e, l := driftEddy(p)
			gen := workload.NewDriftGenerator(42, 100000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Ingest(l.Widen(0, gen.Next()))
			}
		})
	}
}

// BenchmarkE9GroupedFilter measures grouped-filter vs naive factor
// evaluation at 1000 standing queries (E9).
func BenchmarkE9GroupedFilter(b *testing.B) {
	const nq = 1000
	rng := rand.New(rand.NewSource(23))
	g := gfilter.New(0, tuple.SingleSource(0))
	var preds []expr.Predicate
	for q := 0; q < nq; q++ {
		lo := int64(rng.Intn(100000))
		p1 := expr.Predicate{Col: 0, Op: expr.Ge, Val: tuple.Int(lo)}
		p2 := expr.Predicate{Col: 0, Op: expr.Le, Val: tuple.Int(lo + 1000)}
		g.Add(q, p1)
		g.Add(q, p2)
		preds = append(preds, p1, p2)
	}
	g.Failing(tuple.Int(0)) // warm the index
	b.Run("grouped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Failing(tuple.Int(int64(i % 100000)))
		}
	})
	b.Run("naive", func(b *testing.B) {
		tp := tuple.New(tuple.Int(0))
		for i := 0; i < b.N; i++ {
			tp.Vals[0] = tuple.Int(int64(i % 100000))
			for _, p := range preds {
				_ = p.Eval(tp)
			}
		}
	})
}

// BenchmarkE10Engine measures end-to-end engine feed→eddy→egress cost for
// one standing selection query (the in-process core of E10).
func BenchmarkE10Engine(b *testing.B) {
	db := Open(Config{})
	defer db.Close()
	db.MustCreateStream("s", "x INT, y INT", "")
	q, err := db.Register(`SELECT y FROM s WHERE x > 50`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Feed("s", i%100, i); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = q.Results()
}

// BenchmarkE12Storage measures spool append and windowed scan through the
// buffer pool (E12).
func BenchmarkE12Storage(b *testing.B) {
	b.Run("append", func(b *testing.B) {
		st, err := storage.NewSegmentStore(b.TempDir(), "s", 1024, nil)
		if err != nil {
			b.Fatal(err)
		}
		gen := workload.NewStockGenerator(1, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Append(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scanPooled", func(b *testing.B) {
		pool := storage.NewBufferPool(16)
		st, err := storage.NewSegmentStore(b.TempDir(), "s", 1024, pool)
		if err != nil {
			b.Fatal(err)
		}
		gen := workload.NewStockGenerator(1, nil)
		for i := 0; i < 100000; i++ {
			st.Append(gen.Next())
		}
		st.Flush()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			left := int64(10000 + i%1000)
			if _, err := st.ScanRange(left, left+500); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWindowedJoin contrasts the two windowed-join execution
// strategies: the SteM-based incremental fast path (physical-time sliding
// windows) vs generic per-instance re-evaluation (forced here via logical
// time). Ablation for DESIGN.md §5.
func BenchmarkWindowedJoin(b *testing.B) {
	run := func(b *testing.B, physical bool) {
		db := Open(Config{ExecutionObjects: 1})
		defer db.Close()
		timeCol := ""
		if physical {
			timeCol = "ts"
		}
		db.MustCreateStream("L", "ts TIME, k INT", timeCol)
		db.MustCreateStream("R", "ts TIME, k INT", timeCol)
		q, err := db.Register(`SELECT L.k FROM L, R WHERE L.k = R.k
			for (t = 50; ; t++) { WindowIs(L, t - 49, t); WindowIs(R, t - 49, t); }`)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ts := int64(i + 1)
			db.Feed("L", ts, int64(i%32))
			db.Feed("R", ts, int64(i%32))
		}
		b.StopTimer()
		_ = q.Results()
	}
	b.Run("incremental", func(b *testing.B) { run(b, true) })
	b.Run("generic", func(b *testing.B) { run(b, false) })
}
