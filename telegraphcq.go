// Package telegraphcq is a Go implementation of TelegraphCQ
// (Chandrasekaran et al., CIDR 2003): a shared, continuously adaptive
// processor for continuous queries over data streams. The engine combines
// eddies (adaptive per-tuple routing), SteMs (state modules forming
// adaptive symmetric joins), grouped filters (shared selections across
// many standing queries), PSoup-style materialized results for
// disconnected clients, Flux (partition-parallel dataflow with online
// load balancing and failover), and the paper's for-loop window semantics
// over logical or physical time.
//
// Quick start:
//
//	db := telegraphcq.Open(telegraphcq.Config{})
//	defer db.Close()
//	db.MustCreateStream("quotes", "ts TIME, sym STRING, price FLOAT", "ts")
//	q, _ := db.Register(`SELECT price FROM quotes WHERE sym = 'MSFT'`)
//	rows := q.Subscribe(64)
//	db.Feed("quotes", 1, "MSFT", 57.25)
//	r := <-rows
//	fmt.Println(r.Float(0))
//
// The deeper machinery lives in internal/ packages; this package is the
// stable surface a downstream application uses. Serving the engine over
// TCP (the PostgreSQL-style postmaster/front-end architecture) is exposed
// via Serve and DialClient.
package telegraphcq

import (
	"fmt"
	"strings"

	"telegraphcq/internal/core"
	"telegraphcq/internal/egress"
	"telegraphcq/internal/ingress"
	"telegraphcq/internal/metrics"
	"telegraphcq/internal/server"
	"telegraphcq/internal/tuple"
)

// Config tunes the engine.
type Config struct {
	// ExecutionObjects is the scheduler thread count (default 2).
	ExecutionObjects int
	// SpoolDir enables disk spooling of stream history when set.
	SpoolDir string
	// SegmentSize is tuples per spool segment (default 1024).
	SegmentSize int
	// PoolSegments bounds the buffer pool (default 64).
	PoolSegments int
	// TraceSampleRate enables tuple-lineage tracing: each tuple entering
	// an eddy is sampled with this probability (0 disables, 1 traces all)
	// and its module-visit path recorded with per-hop latency. Retrieve
	// traces with Query.Traces or the TRACE wire command.
	TraceSampleRate float64
	// BatchSize is the tuple-batch granularity of the dataflow: ingress
	// fan-out, query input drains, eddy routing, and parallel shard
	// handoffs move up to BatchSize tuples per operation (default 64).
	// BatchSize 1 degenerates to per-tuple processing with identical
	// output sequences — larger values trade a little latency for
	// amortized locking and routing on saturated streams.
	BatchSize int
	// Workers > 1 enables intra-process parallel execution for eligible
	// query classes (hash-partitioned eddy shards behind a merge stage);
	// the default 1 keeps every query on the sequential path.
	Workers int
	// SharedArrangements enables shared-arrangement execution: qualifying
	// two-stream equijoin queries share one SteM build stored in multi-
	// reader arrangements (one writer, per-query cursor handles, epoch-
	// based reclamation), so each additional overlapping query costs an
	// index entry instead of a state copy. Off (the default) keeps every
	// query on its previous path, bit-identical.
	SharedArrangements bool
	// Columnar enables the columnar zero-alloc hot path: eligible
	// unwindowed two-stream equijoins (self-joins included, with their
	// selections) run on struct-of-arrays blocks carved from a per-query
	// arena instead of per-tuple heap rows, with mask-based survivor
	// selection and columnar SteM state. Requires Workers == 1 for the
	// eligible queries; results are the same multiset either way (E17
	// measures ~0 allocs/tuple and ~3x single-core throughput). Off (the
	// default) keeps every query on its previous path, bit-identical.
	Columnar bool
}

// DB is an embedded TelegraphCQ engine.
type DB struct {
	engine *core.Engine
}

// Open starts an engine.
func Open(cfg Config) *DB {
	return &DB{engine: core.NewEngine(core.Options{
		EOs:             cfg.ExecutionObjects,
		SpoolDir:        cfg.SpoolDir,
		SegmentSize:     cfg.SegmentSize,
		PoolSegments:    cfg.PoolSegments,
		TraceSampleRate: cfg.TraceSampleRate,
		BatchSize:       cfg.BatchSize,
		Workers:         cfg.Workers,

		SharedArrangements: cfg.SharedArrangements,
		Columnar:           cfg.Columnar,
	})}
}

// Close shuts the engine down.
func (db *DB) Close() { db.engine.Stop() }

// Metrics exposes the engine's metric registry: counters, gauges, and
// latency histograms for every subsystem, exportable in Prometheus text
// format via its WritePrometheus method (or served with metrics.Handler).
func (db *DB) Metrics() *metrics.Registry { return db.engine.Metrics() }

// CreateStream declares a stream from a column spec like
// "ts TIME, sym STRING, price FLOAT". timeCol names the column carrying
// the stream's timestamp ("" uses arrival order — logical time).
func (db *DB) CreateStream(name, colSpec, timeCol string) error {
	schema, err := parseColSpec(name, colSpec)
	if err != nil {
		return err
	}
	tc := -1
	if timeCol != "" {
		tc = schema.ColumnIndex(timeCol)
		if tc < 0 {
			return fmt.Errorf("telegraphcq: time column %q not in schema", timeCol)
		}
	}
	return db.engine.CreateStream(name, schema, tc)
}

// MustCreateStream is CreateStream, panicking on error (setup code).
func (db *DB) MustCreateStream(name, colSpec, timeCol string) {
	if err := db.CreateStream(name, colSpec, timeCol); err != nil {
		panic(err)
	}
}

// CreateTable declares a static table.
func (db *DB) CreateTable(name, colSpec string) error {
	schema, err := parseColSpec(name, colSpec)
	if err != nil {
		return err
	}
	return db.engine.CreateTable(name, schema)
}

func parseColSpec(relation, colSpec string) (*tuple.Schema, error) {
	var cols []tuple.Column
	for _, part := range strings.Split(colSpec, ",") {
		fs := strings.Fields(strings.TrimSpace(part))
		if len(fs) != 2 {
			return nil, fmt.Errorf("telegraphcq: bad column spec %q", part)
		}
		kind, err := parseKind(fs[1])
		if err != nil {
			return nil, err
		}
		cols = append(cols, tuple.Column{Name: fs[0], Kind: kind})
	}
	return tuple.NewSchema(relation, cols...), nil
}

func parseKind(s string) (tuple.Kind, error) {
	switch strings.ToUpper(s) {
	case "INT", "BIGINT", "LONG":
		return tuple.KindInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return tuple.KindFloat, nil
	case "STRING", "TEXT", "CHAR", "VARCHAR":
		return tuple.KindString, nil
	case "BOOL", "BOOLEAN":
		return tuple.KindBool, nil
	case "TIME", "TIMESTAMP":
		return tuple.KindTime, nil
	default:
		return 0, fmt.Errorf("telegraphcq: unknown column type %q", s)
	}
}

// Feed delivers one tuple into a stream; values must match the schema
// positionally. Supported Go types: int/int64, float64, string, bool.
func (db *DB) Feed(stream string, values ...interface{}) error {
	entry, err := db.engine.Catalog().Lookup(stream)
	if err != nil {
		return err
	}
	if len(values) != entry.Schema.Arity() {
		return fmt.Errorf("telegraphcq: %s wants %d values, got %d",
			stream, entry.Schema.Arity(), len(values))
	}
	vals := make([]tuple.Value, len(values))
	for i, v := range values {
		tv, err := toValue(v, entry.Schema.Columns[i].Kind)
		if err != nil {
			return fmt.Errorf("telegraphcq: column %s: %w", entry.Schema.Columns[i].Name, err)
		}
		vals[i] = tv
	}
	return db.engine.Feed(stream, tuple.New(vals...))
}

func toValue(v interface{}, kind tuple.Kind) (tuple.Value, error) {
	switch x := v.(type) {
	case nil:
		return tuple.Null, nil
	case int:
		return numValue(float64(x), int64(x), kind)
	case int64:
		return numValue(float64(x), x, kind)
	case float64:
		return numValue(x, int64(x), kind)
	case string:
		if kind != tuple.KindString {
			return tuple.Null, fmt.Errorf("string given for %s column", kind)
		}
		return tuple.String_(x), nil
	case bool:
		if kind != tuple.KindBool {
			return tuple.Null, fmt.Errorf("bool given for %s column", kind)
		}
		return tuple.Bool(x), nil
	default:
		return tuple.Null, fmt.Errorf("unsupported value type %T", v)
	}
}

func numValue(f float64, i int64, kind tuple.Kind) (tuple.Value, error) {
	switch kind {
	case tuple.KindFloat:
		return tuple.Float(f), nil
	case tuple.KindInt, tuple.KindTime:
		return tuple.Value{K: kind, I: i}, nil
	default:
		return tuple.Null, fmt.Errorf("numeric value given for %s column", kind)
	}
}

// FeedCSV delivers one comma-separated row.
func (db *DB) FeedCSV(stream, line string) error {
	entry, err := db.engine.Catalog().Lookup(stream)
	if err != nil {
		return err
	}
	t, err := ingress.ParseCSV(entry.Schema, line)
	if err != nil {
		return err
	}
	return db.engine.Feed(stream, t)
}

// Row is one query result.
type Row struct {
	// T is the window-instance tag (the for-loop variable's value) for
	// windowed queries; 0ish arrival info otherwise.
	T    int64
	vals []tuple.Value
}

// Len returns the column count.
func (r Row) Len() int { return len(r.vals) }

// Int returns column i as int64.
func (r Row) Int(i int) int64 { return r.vals[i].AsInt() }

// Float returns column i as float64.
func (r Row) Float(i int) float64 { return r.vals[i].AsFloat() }

// String_ returns column i as a string value.
func (r Row) String_(i int) string { return r.vals[i].String() }

// String renders the whole row as CSV.
func (r Row) String() string {
	parts := make([]string, len(r.vals))
	for i, v := range r.vals {
		parts[i] = v.String()
	}
	return strings.Join(parts, ",")
}

func toRow(t *tuple.Tuple) Row { return Row{T: t.TS, vals: t.Vals} }

// Query is a standing continuous query.
type Query struct {
	db    *DB
	inner *core.RunningQuery
}

// ID returns the engine-assigned query id.
func (q *Query) ID() int { return q.inner.ID }

// Register parses and starts a continuous query. The dialect is
// SELECT-FROM-WHERE (conjunctive predicates, equality and theta joins,
// COUNT/SUM/AVG/MIN/MAX with GROUP BY) plus the paper's for-loop window
// clause:
//
//	SELECT AVG(price) FROM quotes WHERE sym = 'MSFT'
//	for (t = 50; t < 70; t++) { WindowIs(quotes, t - 4, t); }
func (db *DB) Register(sqlText string) (*Query, error) {
	rq, err := db.engine.Register(sqlText)
	if err != nil {
		return nil, err
	}
	return &Query{db: db, inner: rq}, nil
}

// Subscribe returns a channel streaming results as they are produced
// (push egress). Slow consumers drop rows rather than stall the engine.
func (q *Query) Subscribe(buffer int) <-chan Row {
	_, ch := q.inner.Subscribe(buffer)
	out := make(chan Row, buffer)
	go func() {
		defer close(out)
		for t := range ch {
			out <- toRow(t)
		}
	}()
	return out
}

// Cursor opens a pull cursor replaying all retained results (PSoup-style
// disconnected retrieval).
func (q *Query) Cursor() *Cursor {
	return &Cursor{q: q, id: q.inner.Cursor()}
}

// Cursor fetches results on demand.
type Cursor struct {
	q  *Query
	id int
}

// Fetch returns the results accumulated since the previous Fetch.
func (c *Cursor) Fetch() ([]Row, error) {
	ts, err := c.q.inner.Fetch(c.id)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(ts))
	for i, t := range ts {
		rows[i] = toRow(t)
	}
	return rows, nil
}

// Results returns the lifetime result count.
func (q *Query) Results() int64 { return q.inner.Results() }

// Done reports whether a finite (snapshot/bounded) query has completed.
func (q *Query) Done() bool { return q.inner.Done() }

// Wait blocks until a finite query completes.
func (q *Query) Wait() { q.inner.Wait() }

// Deregister removes the standing query.
func (q *Query) Deregister() error { return q.db.engine.Deregister(q.inner.ID) }

// Traces returns the query's recorded tuple-lineage traces (requires
// Config.TraceSampleRate > 0): each trace lists the modules a sampled
// tuple visited, with per-hop latency and the routing outcome.
func (q *Query) Traces() ([]*metrics.Trace, error) {
	return q.db.engine.Traces(q.inner.ID)
}

// Server is a TCP postmaster serving this engine.
type Server struct {
	pm *server.Postmaster
}

// Serve starts a postmaster for the engine on addr ("127.0.0.1:0" picks a
// free port).
func (db *DB) Serve(addr string) (*Server, error) {
	pm, err := server.Listen(db.engine, addr)
	if err != nil {
		return nil, err
	}
	return &Server{pm: pm}, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.pm.Addr() }

// Close stops the server.
func (s *Server) Close() error { return s.pm.Close() }

// Client is a remote connection to a TelegraphCQ server.
type Client = server.Client

// DialClient connects to a server (or proxy).
func DialClient(addr string) (*Client, error) { return server.Dial(addr) }

// NewProxy starts a cursor-multiplexing proxy in front of serverAddr.
func NewProxy(serverAddr, listenAddr string) (*server.Proxy, error) {
	return server.NewProxy(serverAddr, listenAddr)
}

// PriorityQueue delivers a query's results in user-preference order
// rather than arrival order (the Juggle operator of [RRH99], §4.3):
// interesting rows reach the application first, and under overflow the
// LEAST interesting pending rows are shed.
type PriorityQueue struct {
	pe *egress.PriorityEgress
}

// SubscribePriority attaches a preference-ordered result buffer to the
// query. priority maps each result row to its interest (higher = sooner);
// at most capacity rows are buffered between Drain calls.
func (q *Query) SubscribePriority(capacity int, priority func(Row) float64) *PriorityQueue {
	pe := egress.NewPriorityEgress(capacity, func(t *tuple.Tuple) float64 {
		return priority(toRow(t))
	})
	q.inner.AddSink(pe.Publish)
	return &PriorityQueue{pe: pe}
}

// Next returns the highest-priority pending row.
func (pq *PriorityQueue) Next() (Row, bool) {
	t := pq.pe.Next()
	if t == nil {
		return Row{}, false
	}
	return toRow(t), true
}

// Drain returns up to max pending rows in priority order (max <= 0 drains
// everything pending).
func (pq *PriorityQueue) Drain(max int) []Row {
	ts := pq.pe.Drain(max)
	rows := make([]Row, len(ts))
	for i, t := range ts {
		rows[i] = toRow(t)
	}
	return rows
}

// Stats returns delivered and preference-shed counts.
func (pq *PriorityQueue) Stats() (emitted, shed int64) { return pq.pe.Stats() }
